"""Tests for repro.windows.driver."""

import pytest

from repro.sketch.spacesaving import SpaceSaving
from repro.trace.container import Trace
from repro.windows.driver import WindowedDetectorDriver
from repro.packet.model import Packet


def trace_from(points):
    """points: (ts, src, length) triples."""
    return Trace.from_packets(
        Packet(ts=ts, src=src, dst=0, length=length) for ts, src, length in points
    )


class ExactCounter:
    """A trivially exact streaming detector for driver tests."""

    def __init__(self):
        self.counts = {}

    def update(self, key, weight):
        self.counts[key] = self.counts.get(key, 0) + weight

    def query(self, threshold):
        return {k: float(v) for k, v in self.counts.items() if v >= threshold}


class TestDriver:
    def test_resets_at_boundaries(self):
        # Source 1 sends 60 in window 0, source 2 sends 60 in window 1;
        # with resets neither window sees the other's traffic.
        trace = trace_from(
            [(0.1, 1, 60), (0.2, 3, 40), (1.2, 2, 60), (1.3, 3, 40), (2.5, 9, 1)]
        )
        driver = WindowedDetectorDriver(ExactCounter, window_size=1.0, phi=0.5)
        reports = list(driver.run(trace))
        assert len(reports) == 2
        (w0, r0), (w1, r1) = reports
        assert set(r0) == {1}
        assert set(r1) == {2}
        assert w0.index == 0 and w1.index == 1

    def test_threshold_is_relative_to_window_bytes(self):
        # Window bytes = 100, phi = 0.5 -> threshold 50.
        trace = trace_from([(0.2, 1, 50), (0.3, 2, 49), (0.4, 3, 1), (1.5, 9, 1)])
        driver = WindowedDetectorDriver(ExactCounter, window_size=1.0, phi=0.5)
        ((_, report),) = list(driver.run(trace))
        assert set(report) == {1}

    def test_empty_windows_skipped_cleanly(self):
        # A gap longer than one window: the empty middle window reports {}.
        trace = trace_from([(0.1, 1, 10), (2.5, 2, 10), (3.8, 9, 1)])
        driver = WindowedDetectorDriver(ExactCounter, window_size=1.0, phi=0.5)
        reports = list(driver.run(trace))
        assert len(reports) == 3
        assert reports[1][1] == {}

    def test_custom_key_func(self):
        trace = trace_from([(0.2, 1, 100), (1.5, 9, 1)])
        driver = WindowedDetectorDriver(
            ExactCounter, window_size=1.0,
            key_func=lambda pkt: pkt.dst, phi=0.5,
        )
        ((_, report),) = list(driver.run(trace))
        assert set(report) == {0}  # all packets share dst 0

    def test_empty_trace(self):
        driver = WindowedDetectorDriver(ExactCounter, window_size=1.0)
        assert list(driver.run(Trace.empty())) == []

    def test_works_with_real_sketch(self, tiny_trace):
        driver = WindowedDetectorDriver(
            lambda: SpaceSaving(64), window_size=1.0, phi=0.1
        )
        reports = list(driver.run(tiny_trace))
        assert reports
        for window, report in reports:
            assert window.length == pytest.approx(1.0)
            assert all(isinstance(v, float) for v in report.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedDetectorDriver(ExactCounter, window_size=0.0)
        with pytest.raises(ValueError):
            WindowedDetectorDriver(ExactCounter, window_size=1.0, phi=0.0)


class TestFinalWindowPolicy:
    """Regression tests for the explicit emit_partial flush option
    (replacing the seed's float-epsilon 'exactly full' test)."""

    def test_trace_ending_exactly_on_boundary(self):
        # Last packet at ts == start + window_size: it opens a new
        # (partial) window, which is dropped by default.
        trace = trace_from([(0.0, 1, 10), (0.5, 1, 20), (1.0, 2, 30)])
        driver = WindowedDetectorDriver(ExactCounter, window_size=1.0, phi=0.1)
        reports = list(driver.run(trace))
        assert len(reports) == 1
        assert set(reports[0][1]) == {1}

    def test_trace_ending_exactly_on_boundary_with_emit_partial(self):
        trace = trace_from([(0.0, 1, 10), (0.5, 1, 20), (1.0, 2, 30)])
        driver = WindowedDetectorDriver(
            ExactCounter, window_size=1.0, phi=0.1, emit_partial=True
        )
        reports = list(driver.run(trace))
        assert len(reports) == 2
        (w0, r0), (w1, r1) = reports
        assert set(r0) == {1}
        assert set(r1) == {2}
        assert w1.t0 == pytest.approx(1.0) and w1.index == 1

    def test_trace_ending_inside_window(self):
        # Last packet strictly inside the second window: dropped by
        # default, reported under emit_partial.
        points = [(0.0, 1, 10), (0.5, 1, 20), (1.7, 2, 30)]
        default = WindowedDetectorDriver(ExactCounter, window_size=1.0, phi=0.1)
        assert len(list(default.run(trace_from(points)))) == 1
        flushing = WindowedDetectorDriver(
            ExactCounter, window_size=1.0, phi=0.1, emit_partial=True
        )
        reports = list(flushing.run(trace_from(points)))
        assert len(reports) == 2
        assert set(reports[1][1]) == {2}

    def test_single_window_trace_only_reported_with_emit_partial(self):
        points = [(0.0, 1, 10), (0.2, 1, 20)]
        default = WindowedDetectorDriver(ExactCounter, window_size=1.0, phi=0.1)
        assert list(default.run(trace_from(points))) == []
        flushing = WindowedDetectorDriver(
            ExactCounter, window_size=1.0, phi=0.1, emit_partial=True
        )
        ((window, report),) = list(flushing.run(trace_from(points)))
        assert set(report) == {1}
        assert window.index == 0


class TestWindowSlices:
    """The driver's exposed per-window packet/byte offsets."""

    def test_slices_partition_the_trace(self, tiny_trace):
        from repro.windows.driver import window_slices

        slices = window_slices(tiny_trace, 1.0, emit_partial=True)
        assert slices[0].start == 0
        for previous, current in zip(slices, slices[1:]):
            assert current.start == previous.stop
            assert current.window.index == previous.window.index + 1
        assert slices[-1].stop == len(tiny_trace)
        assert sum(s.bytes for s in slices) == tiny_trace.total_bytes
        assert sum(s.packets for s in slices) == len(tiny_trace)

    def test_offsets_match_trace_index_range(self, tiny_trace):
        from repro.windows.driver import window_slices

        for piece in window_slices(tiny_trace, 1.0):
            i, j = tiny_trace.index_range(piece.window.t0, piece.window.t1)
            assert (piece.start, piece.stop) == (i, j)
            assert piece.bytes == int(
                tiny_trace.length[piece.start:piece.stop].sum()
            )

    def test_driver_method_matches_run_windows(self, tiny_trace):
        driver = WindowedDetectorDriver(
            ExactCounter, window_size=1.0, phi=0.1
        )
        slices = driver.window_slices(tiny_trace)
        windows = [window for window, _ in driver.run(tiny_trace)]
        assert [s.window for s in slices] == windows

    def test_empty_trace_has_no_slices(self):
        from repro.windows.driver import window_slices

        assert window_slices(Trace.empty(), 1.0) == []

    def test_partial_slice_only_under_emit_partial(self):
        from repro.windows.driver import window_slices

        trace = trace_from([(0.0, 1, 10), (0.5, 1, 20), (1.7, 2, 30)])
        assert len(window_slices(trace, 1.0)) == 1
        flushed = window_slices(trace, 1.0, emit_partial=True)
        assert len(flushed) == 2
        assert flushed[1].packets == 1


class TestBatchPath:
    def test_batch_and_keyfunc_paths_agree(self, tiny_trace):
        # key_func=None takes the columnar fast path; an equivalent
        # callable forces per-packet extraction.  Reports must match.
        fast = WindowedDetectorDriver(
            lambda: SpaceSaving(64), window_size=1.0, phi=0.1
        )
        slow = WindowedDetectorDriver(
            lambda: SpaceSaving(64), window_size=1.0,
            key_func=lambda pkt: pkt.src, phi=0.1,
        )
        assert list(fast.run(tiny_trace)) == list(slow.run(tiny_trace))

    def test_batch_detector_matches_legacy_scalar_detector(self, tiny_trace):
        # A Detector subclass (batched) and a plain legacy object (scalar
        # protocol) must report identical windows.
        batched = WindowedDetectorDriver(
            lambda: SpaceSaving(4096), window_size=1.0, phi=0.2
        )
        legacy = WindowedDetectorDriver(ExactCounter, window_size=1.0, phi=0.2)
        got = list(batched.run(tiny_trace))
        expected = list(legacy.run(tiny_trace))
        assert [w for w, _ in got] == [w for w, _ in expected]
        # With capacity far above the key count Space-Saving is exact.
        assert [r for _, r in got] == [r for _, r in expected]
