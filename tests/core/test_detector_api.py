"""Tests for the unified Detector ABC (repro.core.detector)."""

import numpy as np
import pytest

from repro.core import Detector, as_batch, detector_names, get_spec, make_detector
from repro.sketch.bloom import BloomFilter
from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch
from repro.sketch.hashpipe import HashPipe
from repro.sketch.misragries import MisraGries
from repro.sketch.spacesaving import SpaceSaving


class TestABC:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            Detector()

    def test_all_registered_are_detectors(self):
        for name in detector_names():
            assert isinstance(make_detector(name), Detector), name

    def test_query_default_raises(self):
        det = make_detector("countmin")
        with pytest.raises(NotImplementedError):
            det.query(1.0)

    def test_merge_default_raises(self):
        det = make_detector("hashpipe")
        with pytest.raises(NotImplementedError):
            det.merge(make_detector("hashpipe"))


class TestAsBatch:
    def test_defaults_weights_to_ones(self):
        keys, weights, ts = as_batch([1, 2, 3], None, None)
        assert weights.tolist() == [1, 1, 1]
        assert ts is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            as_batch([1, 2], [1], None)
        with pytest.raises(ValueError):
            as_batch([1, 2], [1, 1], [0.0])


class TestGenericFallback:
    def test_fallback_replays_scalar_updates(self):
        det = SpaceSaving(16)
        det.update_batch([5, 5, 7], [10, 20, 30])
        assert det.estimate(5) == 30
        assert det.estimate(7) == 30
        assert det.total == 60

    def test_fallback_with_default_weights(self):
        det = SpaceSaving(16)
        det.update_batch([1, 1, 2])
        assert det.estimate(1) == 2
        assert det.total == 3


class TestReset:
    @pytest.mark.parametrize("name", [n for n in detector_names()])
    def test_reset_restores_fresh_state(self, name):
        spec = get_spec(name)
        det = spec.factory()
        ts = [0.5, 1.0, 1.5, 2.0]
        keys = [11, 29, 11, 47]
        for key, t in zip(keys, ts):
            det.update(key, 100, t)
        assert spec.estimate(det, 11, now=3.0) > 0
        det.reset()
        assert spec.estimate(det, 11, now=3.0) == 0.0

    def test_reset_reseeds_rhhh_rng(self):
        a = make_detector("rhhh", seed=3)
        b = make_detector("rhhh", seed=3)
        for key in range(50):
            a.update(key, 1)
        a.reset()
        for key in range(50):
            a.update(key, 1)
            b.update(key, 1)
        assert a._levels[0].items() == b._levels[0].items()


class TestMerge:
    def test_countmin_merge_sums(self):
        a, b = CountMinSketch(width=128, rows=4), CountMinSketch(width=128, rows=4)
        a.update(1, 10)
        b.update(1, 5)
        b.update(2, 7)
        a.merge(b)
        assert a.estimate(1) == 15
        assert a.estimate(2) >= 7
        assert a.total == 22

    def test_countmin_merge_geometry_mismatch(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=128).merge(CountMinSketch(width=64))

    def test_countsketch_merge_sums(self):
        a, b = CountSketch(width=128, rows=5), CountSketch(width=128, rows=5)
        a.update(9, 4)
        b.update(9, 6)
        a.merge(b)
        assert a.estimate(9) == pytest.approx(10)

    def test_bloom_merge_is_union(self):
        a, b = BloomFilter(bits=1024, hashes=3), BloomFilter(bits=1024, hashes=3)
        a.add(1)
        b.add(2)
        a.merge(b)
        assert 1 in a and 2 in a

    def test_spacesaving_merge_disjoint_under_capacity(self):
        a, b = SpaceSaving(16), SpaceSaving(16)
        a.update(1, 10)
        b.update(2, 20)
        a.merge(b)
        assert a.estimate(1) == 10
        assert a.estimate(2) == 20
        assert a.total == 30

    def test_spacesaving_merge_keeps_top_capacity(self):
        a, b = SpaceSaving(2), SpaceSaving(2)
        a.update(1, 10)
        a.update(2, 5)
        b.update(3, 50)
        b.update(4, 1)
        a.merge(b)
        assert len(a) == 2
        # The two largest merged counts survive; overestimates preserved.
        assert a.estimate(3) >= 50
        assert a.estimate(1) >= 10

    def test_misragries_merge_keeps_guarantee(self):
        a, b = MisraGries(2), MisraGries(2)
        for _ in range(30):
            a.update(1)
        for _ in range(20):
            a.update(2)
        for _ in range(25):
            b.update(1)
        for _ in range(5):
            b.update(3)
        total = a.total + b.total
        a.merge(b)
        assert a.total == total
        # Underestimate within N/(capacity+1) of the true count of key 1.
        assert a.estimate(1) <= 55
        assert a.estimate(1) >= 55 - total // 3

    def test_merge_type_mismatch(self):
        with pytest.raises(ValueError):
            CountMinSketch().merge(HashPipe())
