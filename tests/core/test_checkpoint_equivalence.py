"""Checkpoint/restore must be lossless for every registered detector.

The streaming runtime trusts ``save_state``/``load_state`` to snapshot a
detector mid-stream and resume *bit-identically* — same estimates, same
reports, same RNG trajectory.  Parameterized over the whole registry so a
newly-registered detector is held to the contract automatically:

- save → load into a fresh instance → identical ``query``/estimates;
- resume-from-checkpoint ≡ uninterrupted run on a split stream (the
  second half is fed to both the original and the restored detector with
  identical batch boundaries, so float trajectories match exactly);
- the artifact is a deep snapshot: updating the live detector after
  saving must not leak into the checkpoint;
- mismatched detector classes and malformed envelopes are rejected.
"""

import numpy as np
import pytest

from repro.core import (
    CheckpointError,
    STATE_SCHEMA,
    detector_names,
    get_spec,
    load_checkpoint,
    write_checkpoint,
)
from repro.engine import ShardedDetector

N_PACKETS = 600
SPLIT = 311  # deliberately not round: mid-burst, mid-window


@pytest.fixture(scope="module")
def stream():
    """A skewed, time-sorted (keys, weights, ts) packet stream."""
    rng = np.random.default_rng(23)
    universe = rng.integers(0, 2**32, size=48, dtype=np.uint64)
    ranks = np.arange(1, len(universe) + 1, dtype=np.float64)
    popularity = (1.0 / ranks) / (1.0 / ranks).sum()
    keys = rng.choice(universe, size=N_PACKETS, p=popularity)
    weights = rng.integers(40, 1500, size=N_PACKETS, dtype=np.int64)
    ts = np.sort(rng.uniform(0.0, 30.0, size=N_PACKETS))
    return keys, weights, ts


def _feed(detector, spec, keys, weights, ts):
    detector.update_batch(keys, weights, ts if spec.timestamped else None)


def _assert_same_outputs(spec, expected, got, keys, ts, label):
    now = float(ts[-1])
    probe_keys = np.unique(keys).tolist() + [111, 2**40 + 5]  # + absent
    for key in probe_keys:
        assert spec.estimate(got, key, now) == spec.estimate(
            expected, key, now
        ), f"{label}: estimate mismatch for key {key}"
    if spec.enumerable:
        threshold = 1.0
        if spec.timestamped:
            expected_report = expected.query(threshold, now)
            got_report = got.query(threshold, now)
        else:
            expected_report = expected.query(threshold)
            got_report = got.query(threshold)
        assert got_report == expected_report, label


@pytest.mark.parametrize("name", detector_names())
def test_save_load_round_trip(name, stream):
    """save → load into a fresh instance reproduces every output."""
    keys, weights, ts = stream
    spec = get_spec(name)
    original = spec.factory()
    _feed(original, spec, keys, weights, ts)

    restored = spec.factory()
    restored.load_state(original.save_state())
    _assert_same_outputs(spec, original, restored, keys, ts, name)


@pytest.mark.parametrize("name", detector_names())
def test_resume_equals_uninterrupted(name, stream):
    """Checkpoint mid-stream, restore, continue — bit-identical to never
    stopping (same batch boundaries on both paths)."""
    keys, weights, ts = stream
    spec = get_spec(name)

    uninterrupted = spec.factory()
    _feed(uninterrupted, spec, keys[:SPLIT], weights[:SPLIT], ts[:SPLIT])
    _feed(uninterrupted, spec, keys[SPLIT:], weights[SPLIT:], ts[SPLIT:])

    first_half = spec.factory()
    _feed(first_half, spec, keys[:SPLIT], weights[:SPLIT], ts[:SPLIT])
    checkpoint = first_half.save_state()

    resumed = spec.factory()
    resumed.load_state(checkpoint)
    _feed(resumed, spec, keys[SPLIT:], weights[SPLIT:], ts[SPLIT:])

    _assert_same_outputs(spec, uninterrupted, resumed, keys, ts, name)


@pytest.mark.parametrize("name", detector_names())
def test_checkpoint_is_a_deep_snapshot(name, stream):
    """Updates after save must not leak into the saved artifact."""
    keys, weights, ts = stream
    spec = get_spec(name)
    detector = spec.factory()
    _feed(detector, spec, keys[:SPLIT], weights[:SPLIT], ts[:SPLIT])
    checkpoint = detector.save_state()
    reference = spec.factory()
    reference.load_state(checkpoint)

    # Mutate the live detector heavily, then restore the old artifact.
    _feed(detector, spec, keys[SPLIT:], weights[SPLIT:], ts[SPLIT:])
    restored = spec.factory()
    restored.load_state(checkpoint)
    _assert_same_outputs(
        spec, reference, restored, keys[:SPLIT], ts[:SPLIT], name
    )


def test_artifact_is_versioned():
    spec = get_spec("countmin")
    state = spec.factory().save_state()
    assert state["schema"] == STATE_SCHEMA
    assert state["detector"] == "CountMinSketch"
    assert isinstance(state["payload"], bytes)


def test_load_rejects_wrong_detector_class():
    countmin_state = get_spec("countmin").factory().save_state()
    with pytest.raises(CheckpointError, match="cannot load"):
        get_spec("spacesaving").factory().load_state(countmin_state)


def test_load_rejects_malformed_envelopes():
    detector = get_spec("countmin").factory()
    with pytest.raises(CheckpointError, match="schema"):
        detector.load_state({"schema": "bogus/v9", "payload": b""})
    with pytest.raises(CheckpointError):
        detector.load_state("not a dict")


def test_file_round_trip(tmp_path, stream):
    keys, weights, ts = stream
    spec = get_spec("countmin-hh")
    detector = spec.factory()
    _feed(detector, spec, keys, weights, ts)
    path = tmp_path / "detector.ckpt"
    write_checkpoint(detector, path)
    restored = load_checkpoint(spec.factory(), path)
    _assert_same_outputs(spec, detector, restored, keys, ts, "file")


@pytest.mark.parametrize(
    "name", ["countmin", "spacesaving", "misragries", "hashpipe", "univmon"]
)
def test_sharded_detector_round_trip(name, stream):
    """The sharded engine checkpoints shard-wise (runner excluded)."""
    keys, weights, ts = stream
    factory = get_spec(name).factory
    sharded = ShardedDetector(factory, 3)
    sharded.update_batch(keys, weights)

    restored = ShardedDetector(factory, 3)
    restored.load_state(sharded.save_state())
    for key in np.unique(keys)[:20].tolist():
        assert restored.estimate(key) == sharded.estimate(key)

    mismatched = ShardedDetector(factory, 4)
    with pytest.raises(CheckpointError, match="shards"):
        mismatched.load_state(sharded.save_state())


def test_flat_table_state_round_trips_bit_identically(stream):
    """Flat-table columns (keys, counts, occupancy) survive a checkpoint
    byte-for-byte, tombstones and all."""
    keys, weights, ts = stream
    spec = get_spec("spacesaving")
    original = spec.factory()
    _feed(original, spec, keys, weights, ts)

    restored = spec.factory()
    restored.load_state(original.save_state())
    a, b = original._table, restored._table
    assert a.capacity == b.capacity and a.size == b.size
    assert a._tombstones == b._tombstones
    assert a.slot_of == b.slot_of
    np.testing.assert_array_equal(a.key_col, b.key_col)
    np.testing.assert_array_equal(a.state, b.state)
    for column in a.cols:
        assert a.cols[column].dtype == b.cols[column].dtype
        np.testing.assert_array_equal(a.cols[column], b.cols[column])
