"""Sharded-then-merged must equal single-stream for ``mergeable`` entries.

The ``mergeable`` registry flag is the contract the sharded engine trusts
for merge-based combination: feeding key-partitioned sub-streams to N
replicas and folding them back with ``merge`` reproduces the detector a
single stream would have built — exactly for counter arrays (elementwise
sums / ORs), up to float rounding for the lazily-decayed structures
(regrouped products of ``exp``).

Parameterized over the whole registry so newly-registered detectors are
held to the flag they declare.
"""

import numpy as np
import pytest

from repro.core import detector_names, get_spec
from repro.engine import ShardedDetector

N_PACKETS = 600
NUM_SHARDS = 3

MERGEABLE = [n for n in detector_names() if get_spec(n).mergeable]


@pytest.fixture(scope="module")
def stream():
    """A skewed, time-sorted (keys, weights, ts) packet stream."""
    rng = np.random.default_rng(17)
    universe = rng.integers(0, 2**32, size=48, dtype=np.uint64)
    ranks = np.arange(1, len(universe) + 1, dtype=np.float64)
    popularity = (1.0 / ranks) / (1.0 / ranks).sum()
    keys = rng.choice(universe, size=N_PACKETS, p=popularity)
    weights = rng.integers(40, 1500, size=N_PACKETS, dtype=np.int64)
    ts = np.sort(rng.uniform(0.0, 30.0, size=N_PACKETS))
    return keys, weights, ts


def test_registry_marks_mergeable_detectors():
    """The engine's merge-based combination has detectors to work with."""
    assert "countmin" in MERGEABLE
    assert "exact-decayed" in MERGEABLE


@pytest.mark.parametrize("name", detector_names())
def test_mergeable_flag_matches_merge_support(name):
    """A detector marked mergeable must accept a same-geometry merge; the
    flag is what the engine dispatches on, so it cannot lie."""
    spec = get_spec(name)
    detector, other = spec.factory(), spec.factory()
    if spec.mergeable:
        detector.merge(other)  # empty merge must be accepted
    else:
        # Unflagged detectors either lack merge or define an approximate
        # one (Space-Saving, Misra-Gries, the Count-Min tracker); both are
        # fine — the engine combines them by concatenated reports instead.
        pass


@pytest.mark.parametrize("name", MERGEABLE)
def test_sharded_then_merged_equals_single_stream(name, stream):
    keys, weights, ts = stream
    spec = get_spec(name)

    single = spec.factory()
    single.update_batch(
        keys, weights, ts if spec.timestamped else None
    )

    sharded = ShardedDetector(spec.factory, NUM_SHARDS)
    sharded.update_batch(
        keys, weights, ts if spec.timestamped else None
    )
    merged = sharded.merged()

    now = float(ts[-1])
    probe_keys = np.unique(keys).tolist() + [111, 2**40 + 5]  # + absent
    for key in probe_keys:
        expected = spec.estimate(single, key, now)
        got = spec.estimate(merged, key, now)
        assert got == pytest.approx(expected, rel=1e-9, abs=1e-9), (
            f"{name}: merged estimate mismatch for key {key}"
        )

    if spec.enumerable:
        threshold = float(weights.sum()) / 50.0
        if spec.timestamped:
            expected_report = single.query(threshold, now)
            got_report = merged.query(threshold, now)
        else:
            expected_report = single.query(threshold)
            got_report = merged.query(threshold)
        assert set(expected_report) == set(got_report), name
        for key, value in expected_report.items():
            assert got_report[key] == pytest.approx(value, rel=1e-9), name


@pytest.mark.parametrize("name", MERGEABLE)
def test_merge_order_does_not_matter(name, stream):
    """Folding shards in reverse gives the same detector (commutative
    combination is what lets the engine merge in any completion order)."""
    keys, weights, ts = stream
    spec = get_spec(name)
    sharded = ShardedDetector(spec.factory, NUM_SHARDS)
    sharded.update_batch(keys, weights, ts if spec.timestamped else None)

    forward = spec.factory()
    for shard in sharded.shards:
        forward.merge(shard)
    backward = spec.factory()
    for shard in reversed(sharded.shards):
        backward.merge(shard)

    now = float(ts[-1])
    for key in np.unique(keys)[:20].tolist():
        assert spec.estimate(forward, key, now) == pytest.approx(
            spec.estimate(backward, key, now), rel=1e-9, abs=1e-9
        ), name


def test_merge_rejects_wrong_type():
    for name in MERGEABLE:
        spec = get_spec(name)
        with pytest.raises(ValueError):
            spec.factory().merge(get_spec("misragries").factory())


def test_merge_rejects_different_hash_families():
    """Same geometry but different seeds hashes keys to different cells;
    summing those tables silently corrupts estimates, so merge must refuse."""
    from repro.hashing.families import pairwise_indep_family

    for name in ("countmin", "countsketch", "bloom", "counting-bloom",
                 "decayed-countmin", "ondemand-tdbf"):
        spec = get_spec(name)
        default = spec.factory()
        reseeded = spec.factory(family=pairwise_indep_family(seed=7))
        with pytest.raises(ValueError, match="hash"):
            default.merge(reseeded)


def test_decayed_merge_rejects_law_mismatch():
    """Value-linear merges require identically-parameterised laws."""
    from repro.decay.laws import ExponentialDecay, LinearDecay

    spec = get_spec("decayed-countmin")
    a = spec.factory(law=ExponentialDecay(tau=10.0))
    b = spec.factory(law=ExponentialDecay(tau=5.0))
    with pytest.raises(ValueError, match="law"):
        a.merge(b)
    c = spec.factory(law=LinearDecay(rate=1.0))
    d = spec.factory(law=LinearDecay(rate=1.0))
    with pytest.raises(ValueError, match="value-linear"):
        c.merge(d)


def test_decayed_merge_rejects_laws_that_round_to_the_same_repr():
    """Law comparison is by exact parameters, not by repr (whose rounded
    tau formatting would conflate nearby laws)."""
    from repro.decay.laws import ExponentialDecay

    near_a = ExponentialDecay(tau=10.0001)
    near_b = ExponentialDecay(tau=10.0004)
    assert repr(near_a) == repr(near_b)  # the trap this test guards
    spec = get_spec("decayed-countmin")
    with pytest.raises(ValueError, match="law"):
        spec.factory(law=near_a).merge(spec.factory(law=near_b))
    exact = get_spec("exact-decayed")
    with pytest.raises(ValueError, match="law"):
        exact.factory(law=near_a).merge(exact.factory(law=near_b))
