"""``update_batch`` must be equivalent to repeated scalar ``update``.

Parameterized over the whole detector registry: two identically-configured
instances consume the same packet stream, one packet at a time vs in
columnar batches, and must produce the same estimates and the same reports.

Array-backed detectors take a truly vectorized path here (numpy hashing +
scatter updates); their equivalence is up to floating-point rounding for
the decayed structures (``np.exp`` vs incremental ``math.exp``), hence the
relative tolerance.  Pointer-based detectors replay scalar updates and
must match exactly — the tolerance just never triggers.
"""

import numpy as np
import pytest

from repro.core import detector_names, get_spec

N_PACKETS = 600
N_BATCHES = 4


@pytest.fixture(scope="module")
def stream():
    """A skewed, time-sorted (keys, weights, ts) packet stream."""
    rng = np.random.default_rng(7)
    # Skewed key popularity over an IPv4-ish key space.
    universe = rng.integers(0, 2**32, size=48, dtype=np.uint64)
    ranks = np.arange(1, len(universe) + 1, dtype=np.float64)
    popularity = (1.0 / ranks) / (1.0 / ranks).sum()
    keys = rng.choice(universe, size=N_PACKETS, p=popularity)
    weights = rng.integers(40, 1500, size=N_PACKETS, dtype=np.int64)
    ts = np.sort(rng.uniform(0.0, 30.0, size=N_PACKETS))
    return keys, weights, ts


@pytest.mark.parametrize("name", detector_names())
def test_batch_equals_scalar(name, stream):
    keys, weights, ts = stream
    spec = get_spec(name)
    scalar_det = spec.factory()
    batch_det = spec.factory()

    for key, weight, t in zip(keys.tolist(), weights.tolist(), ts.tolist()):
        if spec.timestamped:
            scalar_det.update(key, weight, t)
        else:
            scalar_det.update(key, weight)

    for chunk in np.array_split(np.arange(N_PACKETS), N_BATCHES):
        i, j = int(chunk[0]), int(chunk[-1]) + 1
        batch_det.update_batch(
            keys[i:j], weights[i:j], ts[i:j] if spec.timestamped else None
        )

    now = float(ts[-1])
    for key in np.unique(keys).tolist():
        expected = spec.estimate(scalar_det, key, now)
        got = spec.estimate(batch_det, key, now)
        assert got == pytest.approx(expected, rel=1e-9, abs=1e-9), (
            f"{name}: estimate mismatch for key {key}"
        )

    if spec.enumerable:
        if spec.timestamped:
            scalar_report = scalar_det.query(1.0, now)
            batch_report = batch_det.query(1.0, now)
        else:
            scalar_report = scalar_det.query(1.0)
            batch_report = batch_det.query(1.0)
        assert set(scalar_report) == set(batch_report), name
        for key, value in scalar_report.items():
            assert batch_report[key] == pytest.approx(value, rel=1e-9), name


@pytest.mark.parametrize(
    "name", ["countmin", "countsketch", "bloom", "counting-bloom",
             "tdbf", "ondemand-tdbf", "decayed-countmin",
             "spacesaving", "misragries", "hashpipe", "rhhh", "univmon",
             "countmin-hh", "decayed-spacesaving", "sliding-spacesaving",
             "td-hhh"]
)
def test_array_backed_detectors_override_batch(name):
    """The structures the ISSUE names as vectorized must not fall back to
    the generic scalar replay wholesale (their class overrides the hook)."""
    from repro.core.detector import Detector

    det = get_spec(name).factory()
    assert type(det).update_batch is not Detector.update_batch


# Small geometries keep tiny test batches above the dense-path threshold
# (cells // 128), so these tests exercise the vectorized code, not the
# scalar fallback.
SMALL_GEOMETRY = {
    "tdbf": {"cells": 256},
    "ondemand-tdbf": {"cells": 256},
    "decayed-countmin": {"width": 256},
}


@pytest.mark.parametrize("name", ["tdbf", "ondemand-tdbf", "decayed-countmin"])
def test_stale_and_unsorted_batch_matches_scalar(name):
    """Timestamps behind the structure's clock/stamps (reordered packets,
    or a batch older than a previous one) must follow the exact scalar
    late-packet semantics, not silently diverge."""
    spec = get_spec(name)
    scalar_det = spec.factory(**SMALL_GEOMETRY[name])
    batch_det = spec.factory(**SMALL_GEOMETRY[name])
    keys = np.array([3, 9, 3, 5, 9, 3], dtype=np.uint64)
    weights = np.array([100.0, 50.0, 25.0, 60.0, 10.0, 5.0])
    ts = np.array([10.0, 4.0, 12.0, 6.0, 11.0, 3.0])  # interleaved stale
    for key, weight, t in zip(keys.tolist(), weights.tolist(), ts.tolist()):
        scalar_det.update(key, weight, t)
    # Two batches: the second one is entirely behind the first.
    batch_det.update_batch(keys[:4], weights[:4], ts[:4])
    batch_det.update_batch(keys[4:], weights[4:], ts[4:])
    for key in (3, 5, 9):
        assert spec.estimate(batch_det, key, 13.0) == pytest.approx(
            spec.estimate(scalar_det, key, 13.0), rel=1e-9
        ), name


@pytest.mark.parametrize("name", ["tdbf", "ondemand-tdbf", "decayed-countmin"])
def test_empty_batch_is_noop(name):
    spec = get_spec(name)
    det = spec.factory()
    det.update(5, 100.0, 1.0)
    before = spec.estimate(det, 5, 2.0)
    det.update_batch(
        np.array([], dtype=np.uint64), np.array([]), np.array([])
    )
    assert spec.estimate(det, 5, 2.0) == before


@pytest.mark.parametrize("name", ["ondemand-tdbf", "decayed-countmin"])
def test_estimates_before_batch_end_match_scalar(name):
    """Querying at a `now` earlier than the batch's newest timestamp must
    see the same per-cell state as per-packet streaming (untouched cells
    and early-touched cells keep their own frames)."""
    spec = get_spec(name)
    scalar_det = spec.factory(**SMALL_GEOMETRY[name])
    batch_det = spec.factory(**SMALL_GEOMETRY[name])
    keys = np.array([3, 9], dtype=np.uint64)
    weights = np.array([100.0, 50.0])
    ts = np.array([1.0, 10.0])
    for key, weight, t in zip(keys.tolist(), weights.tolist(), ts.tolist()):
        scalar_det.update(key, weight, t)
    batch_det.update_batch(keys, weights, ts)
    for key in (3, 9, 77):
        for now in (1.0, 5.0, 10.0, 12.0):
            assert spec.estimate(batch_det, key, now) == pytest.approx(
                spec.estimate(scalar_det, key, now), rel=1e-9, abs=1e-12
            ), (name, key, now)


@pytest.mark.parametrize("name", ["ondemand-tdbf", "decayed-countmin"])
def test_extreme_time_span_batch_stays_finite(name):
    """A single batch spanning many decay horizons must underflow to zero
    like the scalar path — never produce inf/NaN from rescaling."""
    spec = get_spec(name)
    batch_det = spec.factory(**SMALL_GEOMETRY[name])
    scalar_det = spec.factory(**SMALL_GEOMETRY[name])
    keys = np.array([3, 9], dtype=np.uint64)
    weights = np.array([100.0, 50.0])
    ts = np.array([0.0, 10_000.0])  # ~1000 tau apart under the default law
    batch_det.update_batch(keys, weights, ts)
    for key, t in zip(keys.tolist(), ts.tolist()):
        scalar_det.update(key, weights[0], t) if key == 3 else \
            scalar_det.update(key, weights[1], t)
    for key in (3, 9):
        got = spec.estimate(batch_det, key, 10_000.0)
        assert np.isfinite(got)
        assert got == pytest.approx(
            spec.estimate(scalar_det, key, 10_000.0), abs=1e-12
        )


def test_timestamped_detectors_require_ts():
    """Continuous-time detectors must reject an omitted timestamp instead
    of silently assuming ts=0 (which would near-zero the contribution)."""
    for name in detector_names():
        spec = get_spec(name)
        if spec.timestamped:
            with pytest.raises(TypeError):
                spec.factory().update(1, 1)
            if spec.enumerable:
                with pytest.raises(TypeError):
                    spec.factory().query(1.0)


def test_countmin_float_weights_match_scalar():
    """Fractional weights: counters truncate identically on both paths and
    `total` accumulates the given weights identically on both paths."""
    spec = get_spec("countmin")
    scalar_det = spec.factory()
    batch_det = spec.factory()
    scalar_det.update(1, 2.7)
    batch_det.update_batch([1], [2.7])
    assert batch_det.total == pytest.approx(scalar_det.total)
    assert batch_det.estimate(1) == scalar_det.estimate(1)


@pytest.mark.parametrize(
    "name", ["countmin", "countsketch", "counting-bloom", "bloom",
             "ondemand-tdbf", "spacesaving"]
)
def test_negative_and_huge_keys_match_scalar(name):
    """Keys outside [0, 2^32) — e.g. a key_func built on Python's hash() —
    must land in the same cells on both paths (scalar hashing reduces mod
    2^64, matching the vectorized uint64 wrap)."""
    spec = get_spec(name)
    kwargs = SMALL_GEOMETRY.get(name, {})
    scalar_det = spec.factory(**kwargs)
    batch_det = spec.factory(**kwargs)
    keys = [-10, -10, -20, 5, 2**63 + 11, -(2**40)]
    weights = [1.0] * len(keys)
    ts = [float(i) for i in range(len(keys))]
    for key, weight, t in zip(keys, weights, ts):
        if spec.timestamped:
            scalar_det.update(key, weight, t)
        else:
            scalar_det.update(key, weight)
    batch_det.update_batch(
        np.asarray(keys, dtype=np.object_), weights,
        ts if spec.timestamped else None,
    )
    for key in set(keys):
        assert spec.estimate(batch_det, key, 10.0) == pytest.approx(
            spec.estimate(scalar_det, key, 10.0), rel=1e-9
        ), (name, key)


def test_countsketch_float_weights_match_scalar():
    """Fractional weights must truncate identically on both paths even
    where the per-row sign is negative."""
    spec = get_spec("countsketch")
    scalar_det = spec.factory()
    batch_det = spec.factory()
    keys = [1, 2, 3, 1, 2]
    weights = [2.7, 1.2, 5.0, 3.9, 0.4]
    for key, weight in zip(keys, weights):
        scalar_det.update(key, weight)
    batch_det.update_batch(keys, weights)
    for key in (1, 2, 3):
        assert batch_det.estimate(key) == scalar_det.estimate(key)
    assert batch_det.total == pytest.approx(scalar_det.total)


def test_single_batch_equals_many_batches():
    """Batch boundaries must not matter (decayed re-representation check)."""
    spec = get_spec("ondemand-tdbf")
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 2**32, size=300, dtype=np.uint64)
    weights = rng.integers(40, 1500, size=300).astype(np.float64)
    ts = np.sort(rng.uniform(0.0, 20.0, size=300))
    one = spec.factory(cells=512)
    many = spec.factory(cells=512)
    one.update_batch(keys, weights, ts)
    for chunk in np.array_split(np.arange(300), 7):
        i, j = int(chunk[0]), int(chunk[-1]) + 1
        many.update_batch(keys[i:j], weights[i:j], ts[i:j])
    for key in np.unique(keys)[:50].tolist():
        assert many.estimate(key, 21.0) == pytest.approx(
            one.estimate(key, 21.0), rel=1e-9, abs=1e-9
        )
