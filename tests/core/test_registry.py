"""Tests for the string-keyed detector registry (repro.core.registry)."""

import pytest

from repro.core import (
    Detector,
    detector_names,
    get_spec,
    make_detector,
    register_detector,
)
from repro.core import registry as registry_module

EXPECTED_NAMES = {
    "bloom",
    "counting-bloom",
    "countmin",
    "countmin-hh",
    "countsketch",
    "decayed-countmin",
    "decayed-spacesaving",
    "exact-decayed",
    "hashpipe",
    "misragries",
    "ondemand-tdbf",
    "rhhh",
    "sliding-spacesaving",
    "spacesaving",
    "td-hhh",
    "tdbf",
    "univmon",
}


class TestRegistry:
    def test_all_expected_detectors_registered(self):
        assert EXPECTED_NAMES <= set(detector_names())

    def test_names_are_sorted(self):
        names = detector_names()
        assert list(names) == sorted(names)

    def test_make_detector_builds_instances(self):
        for name in detector_names():
            det = make_detector(name)
            assert isinstance(det, Detector)
            assert det.num_counters >= 0

    def test_factory_kwargs_forwarded(self):
        det = make_detector("countmin", width=64, rows=2)
        assert det.num_counters == 128

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="countmin"):
            make_detector("no-such-detector")

    def test_duplicate_registration_rejected(self):
        register_detector("_test-dupe", lambda: None)
        try:
            with pytest.raises(ValueError):
                register_detector("_test-dupe", lambda: None)
        finally:
            registry_module._REGISTRY.pop("_test-dupe")

    def test_spec_metadata(self):
        assert get_spec("ondemand-tdbf").timestamped
        assert not get_spec("countmin").timestamped
        assert get_spec("spacesaving").enumerable
        assert not get_spec("bloom").enumerable

    def test_spec_estimate_probe(self):
        spec = get_spec("bloom")
        det = spec.factory()
        det.update(42)
        assert spec.estimate(det, 42, now=0.0) == 1.0
        assert spec.estimate(det, 43, now=0.0) in (0.0, 1.0)
