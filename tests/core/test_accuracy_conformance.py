"""Registry-wide accuracy conformance.

Every *enumerable* detector is scored against exact ground truth on the
zipf and ddos-burst presets and must clear the recall/F1 floors its
registry entry declares (:class:`repro.core.AccuracyFloor`).  The floors —
and the ground truth the detector answers for (whole-trace totals, decayed
counts, trailing window) — live next to the registration, not here, so a
new detector states its own contract and a regression in any update path
fails this suite loudly without the test knowing detector internals.
"""

from __future__ import annotations

import pytest

from repro.analysis.accuracy import accuracy_row, exact_truth
from repro.core import detector_names, get_spec
from repro.trace.spec import TraceSpec

#: Conformance presets: a static heavy-tail and an adversarial burst.
TRACE_SPECS = ("zipf:duration=12", "ddos-burst:duration=12")

#: Thresholds swept per preset (fractions of total truth mass).
PHIS = (0.01, 0.02)

ENUMERABLE = [
    name for name in detector_names() if get_spec(name).enumerable
]


@pytest.mark.parametrize("name", ENUMERABLE)
def test_every_enumerable_detector_declares_floors(name):
    """Enumerability implies a conformance contract: no silent opt-outs."""
    assert get_spec(name).accuracy is not None, (
        f"enumerable detector {name!r} declares no AccuracyFloor; add "
        "accuracy=AccuracyFloor(...) to its register_detector call"
    )


@pytest.mark.parametrize("trace_spec", TRACE_SPECS)
@pytest.mark.parametrize("name", ENUMERABLE)
def test_detector_clears_declared_floors(name, trace_spec):
    spec = get_spec(name)
    floor = spec.accuracy
    if floor is None:
        pytest.skip("no declared floor (caught by the declaration test)")
    trace = TraceSpec.parse(trace_spec).build()
    for phi in PHIS:
        row = accuracy_row(spec, trace, phi)
        assert row["recall"] >= floor.recall, (
            f"{name} on {trace_spec} phi={phi}: recall {row['recall']} "
            f"below declared floor {floor.recall} (row: {row})"
        )
        assert row["f1"] >= floor.f1, (
            f"{name} on {trace_spec} phi={phi}: f1 {row['f1']} below "
            f"declared floor {floor.f1} (row: {row})"
        )


class TestExactTruth:
    """The ground-truth computations the conformance scoring rests on."""

    def test_total_matches_bytes_by_key(self):
        trace = TraceSpec.parse("zipf:duration=3").build()
        truth = exact_truth(trace, "total")
        expected = trace.bytes_by_key(
            trace.start_time, trace.end_time + 1.0
        )
        assert {k: int(v) for k, v in truth.items()} == expected

    def test_decayed_is_bounded_by_total_and_positive(self):
        trace = TraceSpec.parse("zipf:duration=3").build()
        total = exact_truth(trace, "total")
        decayed = exact_truth(trace, "decayed", horizon=5.0)
        assert set(decayed) == set(total)
        for key, value in decayed.items():
            assert 0.0 < value <= total[key] + 1e-9

    def test_window_counts_only_the_tail(self):
        trace = TraceSpec.parse("zipf:duration=6").build()
        window = exact_truth(trace, "window", horizon=2.0)
        tail_bytes = trace.bytes_in_range(
            trace.end_time - 2.0, trace.end_time + 1.0
        )
        assert sum(window.values()) == tail_bytes
        assert sum(window.values()) < trace.total_bytes

    def test_unknown_mode_rejected(self):
        trace = TraceSpec.parse("zipf:duration=3").build()
        with pytest.raises(ValueError, match="unknown truth mode"):
            exact_truth(trace, "bogus")

    def test_empty_trace(self):
        from repro.trace.container import Trace

        assert exact_truth(Trace.empty(), "total") == {}


class TestAccuracyFloorValidation:
    def test_rejects_bad_truth_mode(self):
        from repro.core import AccuracyFloor

        with pytest.raises(ValueError, match="unknown truth mode"):
            AccuracyFloor(recall=0.5, f1=0.5, truth="bogus")

    def test_rejects_out_of_range_floors(self):
        from repro.core import AccuracyFloor

        with pytest.raises(ValueError, match="recall"):
            AccuracyFloor(recall=1.5, f1=0.5)
        with pytest.raises(ValueError, match="horizon"):
            AccuracyFloor(recall=0.5, f1=0.5, horizon=0.0)
