"""Unit tests for repro.hashing.tabulation."""

import pytest

from repro.hashing.tabulation import TabulationFamily, TabulationHash


class TestTabulationHash:
    def test_deterministic(self):
        assert TabulationHash(1)(1234) == TabulationHash(1)(1234)

    def test_seed_changes_function(self):
        h0, h1 = TabulationHash(0), TabulationHash(1)
        assert any(h0(k) != h1(k) for k in range(100))

    def test_bounded(self):
        h = TabulationHash(2)
        assert all(0 <= h.bounded(k, 13) < 13 for k in range(500))

    def test_spreads_keys(self):
        h = TabulationHash(3)
        assert len({h(k) for k in range(5000)}) == 5000

    def test_xor_structure(self):
        # Tabulation is linear over byte-tables: h(k) equals the XOR of the
        # per-byte table entries, verified against direct table access.
        h = TabulationHash(4)
        key = 0xDEADBEEF
        expected = (
            h.tables[0][key & 0xFF]
            ^ h.tables[1][(key >> 8) & 0xFF]
            ^ h.tables[2][(key >> 16) & 0xFF]
            ^ h.tables[3][(key >> 24) & 0xFF]
        )
        assert h(key) == expected


class TestTabulationFamily:
    def test_function_range(self):
        f = TabulationFamily(seed=5).function(0, 11)
        assert all(0 <= f(k) < 11 for k in range(300))

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            TabulationFamily().function(0, 0)

    def test_functions_cached(self):
        family = TabulationFamily(seed=6)
        f1 = family.function(0, 100)
        f2 = family.function(0, 100)
        assert [f1(k) for k in range(50)] == [f2(k) for k in range(50)]

    def test_sign_function(self):
        s = TabulationFamily(seed=7).sign_function(0)
        values = {s(k) for k in range(200)}
        assert values == {-1, 1}
