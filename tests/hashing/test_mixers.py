"""Unit tests for repro.hashing.mixers."""

import pytest
from hypothesis import given, strategies as st

from repro.hashing.mixers import fibonacci_hash, splitmix64, xorshift64star

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSplitmix64:
    @given(u64)
    def test_stays_in_64_bits(self, x):
        assert 0 <= splitmix64(x) < (1 << 64)

    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_spreads_sequential_inputs(self):
        outputs = {splitmix64(i) for i in range(1000)}
        assert len(outputs) == 1000

    def test_avalanche_on_single_bit(self):
        a = splitmix64(0)
        b = splitmix64(1)
        # A good mixer flips roughly half the bits.
        assert 16 <= bin(a ^ b).count("1") <= 48


class TestXorshift64Star:
    @given(u64)
    def test_stays_in_64_bits(self, x):
        assert 0 <= xorshift64star(x) < (1 << 64)

    def test_fixes_zero(self):
        assert xorshift64star(0) == 0

    def test_nonzero_inputs_spread(self):
        outputs = {xorshift64star(i) for i in range(1, 1001)}
        assert len(outputs) == 1000


class TestFibonacciHash:
    @given(u64, st.integers(min_value=1, max_value=64))
    def test_range(self, x, bits):
        assert 0 <= fibonacci_hash(x, bits) < (1 << bits)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            fibonacci_hash(1, 0)
        with pytest.raises(ValueError):
            fibonacci_hash(1, 65)

    def test_distributes_over_buckets(self):
        buckets = [0] * 16
        for i in range(16000):
            buckets[fibonacci_hash(i, 4)] += 1
        assert min(buckets) > 500  # roughly uniform (expected 1000)
