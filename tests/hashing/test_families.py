"""Unit tests for repro.hashing.families."""

import pytest
from hypothesis import given, strategies as st

from repro.hashing.families import (
    MixerFamily,
    MultiplyShiftFamily,
    pairwise_indep_family,
)

keys = st.integers(min_value=0, max_value=(1 << 32) - 1)


@pytest.mark.parametrize("family_cls", [MultiplyShiftFamily, MixerFamily])
class TestFamilies:
    def test_deterministic_per_seed(self, family_cls):
        h1 = family_cls(seed=3).function(0, 100)
        h2 = family_cls(seed=3).function(0, 100)
        assert [h1(k) for k in range(50)] == [h2(k) for k in range(50)]

    def test_different_indexes_differ(self, family_cls):
        family = family_cls(seed=1)
        h0 = family.function(0, 1 << 20)
        h1 = family.function(1, 1 << 20)
        same = sum(h0(k) == h1(k) for k in range(2000))
        assert same < 10  # collisions should be ~2000/2^20

    def test_different_seeds_differ(self, family_cls):
        h0 = family_cls(seed=0).function(0, 1 << 20)
        h1 = family_cls(seed=1).function(0, 1 << 20)
        same = sum(h0(k) == h1(k) for k in range(2000))
        assert same < 10

    def test_range_respected(self, family_cls):
        h = family_cls(seed=9).function(0, 7)
        assert all(0 <= h(k) < 7 for k in range(1000))

    def test_rejects_empty_range(self, family_cls):
        with pytest.raises(ValueError):
            family_cls().function(0, 0)

    def test_sign_function_balanced(self, family_cls):
        s = family_cls(seed=2).sign_function(0)
        values = [s(k) for k in range(4000)]
        assert set(values) <= {-1, 1}
        balance = sum(values) / len(values)
        assert abs(balance) < 0.1

    def test_distribution_roughly_uniform(self, family_cls):
        h = family_cls(seed=4).function(0, 10)
        buckets = [0] * 10
        for k in range(10000):
            buckets[h(k)] += 1
        assert min(buckets) > 700  # expected 1000 each


def test_default_family_is_multiply_shift():
    assert isinstance(pairwise_indep_family(), MultiplyShiftFamily)


@pytest.mark.parametrize("family_cls", [MultiplyShiftFamily, MixerFamily])
class TestVectorizedTwins:
    """function_array / sign_array must be bit-exact with the scalars."""

    def test_function_array_matches_scalar(self, family_cls):
        import numpy as np

        family = family_cls(seed=9)
        rng = np.random.default_rng(1)
        batches = [
            rng.integers(0, 2**32, size=2000, dtype=np.uint64),
            rng.integers(0, 2**64, size=2000, dtype=np.uint64),
            np.array([0, 1, 2**32 - 1, 2**32, 2**61 - 2, 2**61 - 1,
                      2**61, 2**64 - 1], dtype=np.uint64),
        ]
        for index in range(3):
            for m in (2, 7, 1024, 12345):
                h = family.function(index, m)
                hv = family.function_array(index, m)
                for keys_arr in batches:
                    expected = [h(int(k)) for k in keys_arr]
                    assert hv(keys_arr).tolist() == expected

    def test_sign_array_matches_scalar(self, family_cls):
        import numpy as np

        family = family_cls(seed=9)
        rng = np.random.default_rng(2)
        keys_arr = rng.integers(0, 2**64, size=2000, dtype=np.uint64)
        for index in range(3):
            s = family.sign_function(index)
            sv = family.sign_array(index)
            assert sv(keys_arr).tolist() == [s(int(k)) for k in keys_arr]

    def test_function_array_validation(self, family_cls):
        with pytest.raises(ValueError):
            family_cls().function_array(0, 0)

    def test_negative_keys_reduce_like_uint64_wrap(self, family_cls):
        import numpy as np

        family = family_cls(seed=11)
        h = family.function(0, 4096)
        hv = family.function_array(0, 4096)
        s = family.sign_function(0)
        sv = family.sign_array(0)
        raw = [-1, -10, -(2**40), -(2**63)]
        wrapped = np.array([k & ((1 << 64) - 1) for k in raw], dtype=np.uint64)
        assert [h(k) for k in raw] == hv(wrapped).tolist()
        assert [s(k) for k in raw] == sv(wrapped).tolist()
