"""CLI surface of the sharded engine: --shards/--workers and listings."""

import json

import pytest

from repro.cli import main


class TestRunShardFlags:
    def test_shards_flag_is_set_sugar(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main([
            "run", "shard-scaling", "--smoke", "--shards", "1,2",
            "--json", str(out),
        ])
        assert code == 0
        document = json.loads(out.read_text())
        assert document["params"]["shards"] == [1, 2]
        assert [row["shards"] for row in document["rows"]] == [1, 2]

    def test_workers_flag_recorded_in_params(self, tmp_path):
        out = tmp_path / "result.json"
        code = main([
            "run", "shard-scaling", "--smoke", "--shards", "1",
            "--workers", "1", "--json", str(out),
        ])
        assert code == 0
        assert json.loads(out.read_text())["params"]["workers"] == 1

    def test_flag_and_set_conflict_is_an_error(self, capsys):
        code = main([
            "run", "shard-scaling", "--smoke", "--shards", "1,2",
            "--set", "shards=1",
        ])
        assert code == 2
        assert "--shards conflicts with --set" in capsys.readouterr().err

    def test_shards_on_experiment_without_param_fails_cleanly(self, capsys):
        code = main(["run", "trace-stats", "--smoke", "--shards", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "has no parameter(s) 'shards'" in err
        assert "declared parameters" in err

    def test_unknown_set_lists_declared_params(self, capsys):
        code = main([
            "run", "shard-scaling", "--smoke", "--set", "shard=2",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "did you mean 'shards'" in err
        assert "declared parameters" in err
        assert "shards (ints, default 1,2,4)" in err

    def test_bad_workers_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "shard-scaling", "--workers", "0"])


class TestDetectorListing:
    def test_mergeable_column(self, capsys):
        assert main(["detectors"]) == 0
        out = capsys.readouterr().out
        header, separator, *rows = out.strip().splitlines()
        assert "mergeable" in header
        cells = {
            row.split()[0]: row.split() for row in rows
        }
        assert cells["countmin"][3] == "yes"
        assert cells["spacesaving"][3] == "no"

    def test_experiments_listing_includes_shard_scaling(self, capsys):
        assert main(["experiments", "--names"]) == 0
        assert "shard-scaling" in capsys.readouterr().out.split()
