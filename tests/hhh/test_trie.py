"""Tests for repro.hhh.trie, including the trie-vs-rollup HHH oracle."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hhh.exact_hhh import ExactHHH
from repro.hhh.trie import PrefixTrie
from repro.hierarchy.domain import BYTE_LENGTHS
from repro.net.prefix import Prefix

counts_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=1, max_value=5_000),
    min_size=1,
    max_size=40,
)


class TestBasics:
    def test_insert_and_total(self):
        trie = PrefixTrie()
        trie.insert(0x0A000001, 10)
        trie.insert(0x0A000001, 5)
        assert trie.total == 15

    def test_validation(self):
        trie = PrefixTrie()
        with pytest.raises(ValueError):
            trie.insert(1 << 32, 1)
        with pytest.raises(ValueError):
            trie.insert(0, -1)

    def test_subtree_volume(self):
        trie = PrefixTrie()
        trie.insert(0x0A000001, 10)
        trie.insert(0x0A000002, 20)
        trie.insert(0x0B000001, 30)
        assert trie.subtree_volume(Prefix(0x0A000000, 24)) == 30
        assert trie.subtree_volume(Prefix(0x0A000000, 8)) == 30
        assert trie.subtree_volume(Prefix(0, 0)) == 60
        assert trie.subtree_volume(Prefix(0x0C000000, 8)) == 0

    def test_leaves_roundtrip(self):
        counts = {0x0A000001: 10, 0x0B000002: 20, 0xFFFFFFFF: 5}
        trie = PrefixTrie()
        trie.insert_counts(counts)
        assert dict(trie.leaves()) == counts

    @given(counts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_subtree_volume_consistent(self, counts):
        trie = PrefixTrie()
        trie.insert_counts(counts)
        # Root subtree volume equals the total inserted mass.
        assert trie.subtree_volume(Prefix(0, 0)) == sum(counts.values())


class TestHHHOracle:
    """The trie walk and the dict rollup must agree exactly."""

    @given(counts_strategy, st.sampled_from([0.02, 0.05, 0.1, 0.25]))
    @settings(max_examples=80, deadline=None)
    def test_matches_rollup_at_byte_granularity(self, counts, phi):
        trie = PrefixTrie()
        trie.insert_counts(counts)
        threshold = phi * sum(counts.values())
        if threshold <= 0:
            return
        from_trie = trie.hhh(threshold, BYTE_LENGTHS)
        from_rollup = ExactHHH(phi).detect(counts)
        assert set(from_trie) == set(from_rollup.prefixes)
        for item in from_rollup:
            assert from_trie[item.prefix] == item.discounted_bytes

    def test_bit_granularity_levels(self):
        trie = PrefixTrie()
        # Two /32s differing in the last bit; at bit granularity their /31
        # aggregate qualifies before the /24 does.
        trie.insert(0b10, 30)
        trie.insert(0b11, 30)
        trie.insert(0x80000000, 40)
        result = trie.hhh(50.0)
        assert Prefix(0b10, 31) in result

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            PrefixTrie().hhh(0.0)
