"""Tests for repro.hhh.ground_truth."""

from repro.hhh.exact_hhh import ExactHHH
from repro.hhh.ground_truth import window_ground_truth
from repro.windows.disjoint import DisjointWindows
from repro.windows.schedule import Window


class TestWindowGroundTruth:
    def test_one_result_per_window_in_order(self, tiny_trace):
        windows = list(DisjointWindows(1.0).over_trace(tiny_trace))
        series = list(
            window_ground_truth(tiny_trace, windows, ExactHHH(0.1))
        )
        assert [w for w, _ in series] == windows

    def test_results_match_direct_detection(self, tiny_trace):
        detector = ExactHHH(0.1)
        window = Window(1.0, 3.0, 0)
        ((_, via_series),) = list(
            window_ground_truth(tiny_trace, [window], detector)
        )
        direct = detector.detect_window(tiny_trace, 1.0, 3.0)
        assert via_series.prefixes == direct.prefixes

    def test_dst_key(self, tiny_trace):
        windows = [Window(0.0, 2.0, 0)]
        ((_, result),) = list(
            window_ground_truth(tiny_trace, windows, ExactHHH(0.2), key="dst")
        )
        assert result.total_bytes == tiny_trace.bytes_in_range(0.0, 2.0)

    def test_empty_schedule(self, tiny_trace):
        assert list(window_ground_truth(tiny_trace, [], ExactHHH(0.1))) == []
