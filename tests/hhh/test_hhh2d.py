"""Tests for repro.hhh.hhh2d."""

import pytest

from repro.hhh.hhh2d import ExactHHH2D
from repro.net.prefix import Prefix


def key(src, dst):
    return (src << 32) | dst


class TestExactHHH2D:
    def test_heavy_flow_detected_at_leaf(self):
        counts = {key(0x0A000001, 0x0B000001): 90, key(0x0C000001, 0x0D000001): 10}
        items = ExactHHH2D(0.5).detect(counts)
        leaf = [
            i for i in items
            if i.src_prefix.length == 32 and i.dst_prefix.length == 32
        ]
        assert len(leaf) == 1
        assert leaf[0].src_prefix == Prefix(0x0A000001, 32)
        assert leaf[0].discounted_bytes == 90

    def test_aggregate_across_destinations(self):
        # One source spraying many destinations: heavy at (src/32, dst/0).
        counts = {key(0x0A000001, (i << 24)): 10 for i in range(10)}
        counts[key(0x0B000001, 0x0C000001)] = 30
        items = ExactHHH2D(0.5).detect(counts)
        found = {
            (str(i.src_prefix), str(i.dst_prefix)) for i in items
        }
        assert ("10.0.0.1/32", "0.0.0.0/0") in found

    def test_discounting_prevents_double_count(self):
        # The heavy leaf's mass must not re-qualify its generalisations.
        counts = {key(0x0A000001, 0x0B000001): 100}
        items = ExactHHH2D(0.5).detect(counts)
        assert len(items) == 1

    def test_empty(self):
        assert ExactHHH2D(0.1).detect({}) == []

    def test_phi_validation(self):
        with pytest.raises(ValueError):
            ExactHHH2D(0.0)

    def test_each_item_meets_threshold(self, tiny_trace):
        counts = {}
        for i in range(min(len(tiny_trace), 2000)):
            k = (int(tiny_trace.src[i]) << 32) | int(tiny_trace.dst[i])
            counts[k] = counts.get(k, 0) + int(tiny_trace.length[i])
        phi = 0.1
        items = ExactHHH2D(phi).detect(counts)
        threshold = phi * sum(counts.values())
        for item in items:
            assert item.discounted_bytes >= threshold
