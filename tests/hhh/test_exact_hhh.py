"""Tests for repro.hhh.exact_hhh — the discounted-count semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hhh.exact_hhh import ExactHHH, HHHResult
from repro.hierarchy.domain import SourceHierarchy
from repro.net.prefix import Prefix


def detect(counts, phi=0.1):
    return ExactHHH(phi).detect(counts)


class TestLeafLevel:
    def test_single_heavy_leaf(self):
        result = detect({0x0A000001: 100, 0x0B000001: 5}, phi=0.5)
        assert Prefix(0x0A000001, 32) in result
        assert len(result) >= 1

    def test_threshold_inclusive(self):
        # count == threshold qualifies (>= semantics).
        result = detect({1: 50, 2: 50}, phi=0.5)
        assert Prefix(1, 32) in result and Prefix(2, 32) in result


class TestDiscounting:
    def test_parent_excluded_when_child_covers_all(self):
        # One /32 holds all of its /24's traffic: the /24's discounted
        # count is 0, so only the /32 (and nothing above) is an HHH.
        result = detect({0x0A000001: 100, 0x0B000001: 100}, phi=0.4)
        assert Prefix(0x0A000001, 32) in result
        assert Prefix(0x0A000000, 24) not in result
        assert Prefix(0x0A000000, 8) not in result

    def test_parent_detected_from_sibling_residue(self):
        # Two siblings each below threshold sum to an HHH at /24.
        counts = {0x0A000001: 30, 0x0A000002: 30, 0x0B000001: 40}
        result = detect(counts, phi=0.5)
        assert Prefix(0x0A000001, 32) not in result
        assert Prefix(0x0A000000, 24) in result

    def test_residue_on_top_of_heavy_child(self):
        # A heavy /32 plus enough sibling residue (spread below the
        # threshold) to make the /24 heavy again after discounting.
        counts = {0x0A000001: 50, 0x0A000002: 25, 0x0A000003: 24, 0x0B000001: 1}
        result = detect(counts, phi=0.4)
        assert Prefix(0x0A000001, 32) in result
        assert Prefix(0x0A000002, 32) not in result
        # Residue = 25 + 24 = 49 >= 40 -> the /24 is also an HHH.
        assert Prefix(0x0A000000, 24) in result
        # And the /8 has nothing left.
        assert Prefix(0x0A000000, 8) not in result

    def test_root_collects_scattered_tail(self):
        # 100 sources in different /8s, each 1% -> only the root qualifies.
        counts = {(i << 24): 10 for i in range(100)}
        result = detect(counts, phi=0.5)
        assert result.prefixes == {Prefix(0, 0)}


class TestResultObject:
    def test_threshold_and_total(self):
        result = detect({1: 60, 2: 40}, phi=0.25)
        assert result.total_bytes == 100
        assert result.threshold_bytes == pytest.approx(25.0)
        assert result.phi == 0.25

    def test_discounted_bytes_recorded(self):
        result = detect({0x0A000001: 100}, phi=0.5)
        item = next(iter(result))
        assert item.discounted_bytes == 100

    def test_prefixes_at_length(self):
        counts = {0x0A000001: 30, 0x0A000002: 30, 0x0B000001: 40}
        result = detect(counts, phi=0.4)
        assert result.prefixes_at_length(32) == {Prefix(0x0B000001, 32)}

    def test_empty_counts(self):
        result = detect({}, phi=0.1)
        assert len(result) == 0
        assert result.total_bytes == 0

    def test_zero_counts_only(self):
        result = detect({1: 0, 2: 0}, phi=0.1)
        assert len(result) == 0


class TestConfiguration:
    def test_phi_validation(self):
        with pytest.raises(ValueError):
            ExactHHH(0.0)
        with pytest.raises(ValueError):
            ExactHHH(1.5)

    def test_custom_hierarchy(self):
        detector = ExactHHH(0.5, SourceHierarchy((32, 16, 0)))
        counts = {0x0A000001: 30, 0x0A000002: 30, 0x0B000001: 40}
        result = detector.detect(counts)
        # No /24 level exists: the sibling pair aggregates at /16.
        assert Prefix(0x0A000000, 16) in result

    def test_detect_window(self, tiny_trace):
        detector = ExactHHH(0.05)
        result = detector.detect_window(
            tiny_trace, tiny_trace.start_time, tiny_trace.end_time + 1e-9
        )
        assert result.total_bytes == tiny_trace.total_bytes


class TestInvariants:
    """Definitional invariants, property-tested over random count maps."""

    counts_strategy = st.dictionaries(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=1, max_value=10_000),
        min_size=1,
        max_size=60,
    )

    @given(counts_strategy, st.sampled_from([0.01, 0.05, 0.1, 0.3]))
    @settings(max_examples=60, deadline=None)
    def test_hhh_count_bounded_by_inverse_phi(self, counts, phi):
        # Discounted volumes are disjoint mass, so at most 1/phi HHHs per
        # level; with L levels the bound is L/phi.
        result = ExactHHH(phi).detect(counts)
        levels = SourceHierarchy().num_levels
        assert len(result) <= levels / phi

    @given(counts_strategy, st.sampled_from([0.05, 0.1, 0.3]))
    @settings(max_examples=60, deadline=None)
    def test_every_item_meets_threshold(self, counts, phi):
        result = ExactHHH(phi).detect(counts)
        for item in result:
            assert item.discounted_bytes >= result.threshold_bytes

    @given(counts_strategy, st.sampled_from([0.05, 0.1, 0.3]))
    @settings(max_examples=60, deadline=None)
    def test_discounted_sum_bounded_by_total(self, counts, phi):
        result = ExactHHH(phi).detect(counts)
        assert sum(i.discounted_bytes for i in result) <= sum(counts.values())

    @given(counts_strategy)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_threshold(self, counts):
        # Raising phi can only shrink... (not in general for HHH sets, but
        # the *leaf level* is monotone; test that restricted invariant).
        lo = ExactHHH(0.05).detect(counts).prefixes_at_length(32)
        hi = ExactHHH(0.20).detect(counts).prefixes_at_length(32)
        assert hi <= lo

    @given(counts_strategy, st.sampled_from([0.05, 0.1]))
    @settings(max_examples=40, deadline=None)
    def test_heavy_leaves_always_detected(self, counts, phi):
        result = ExactHHH(phi).detect(counts)
        total = sum(counts.values())
        for key, count in counts.items():
            if count >= phi * total:
                assert Prefix(key, 32) in result
