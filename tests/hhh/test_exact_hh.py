"""Tests for repro.hhh.exact_hh."""

import pytest

from repro.hhh.exact_hh import exact_heavy_hitters, heavy_hitter_prefixes
from repro.hhh.exact_hhh import ExactHHH
from repro.net.prefix import Prefix


class TestExactHeavyHitters:
    def test_filters_by_threshold(self):
        counts = {1: 100, 2: 50, 3: 10}
        assert exact_heavy_hitters(counts, 50) == {1: 100, 2: 50}

    def test_empty(self):
        assert exact_heavy_hitters({}, 10) == {}

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            exact_heavy_hitters({1: 5}, 0)


class TestHeavyHitterPrefixes:
    def test_undiscounted_rollup(self):
        counts = {0x0A000001: 60, 0x0A000002: 50}
        result = heavy_hitter_prefixes(counts, 100)
        # Neither leaf qualifies, but every ancestor of the pair does.
        assert Prefix(0x0A000000, 24) in result
        assert Prefix(0x0A000000, 16) in result
        assert Prefix(0x0A000000, 8) in result
        assert Prefix(0, 0) in result

    def test_counts_are_plain_sums(self):
        counts = {0x0A000001: 60, 0x0A000002: 50}
        result = heavy_hitter_prefixes(counts, 100)
        assert result[Prefix(0x0A000000, 24)] == 110

    def test_hhh_is_subset_of_heavy_prefixes(self, tiny_trace):
        counts = tiny_trace.bytes_by_key(0.0, 1e9)
        threshold = 0.05 * sum(counts.values())
        heavy = set(heavy_hitter_prefixes(counts, threshold))
        hhh = ExactHHH(0.05).detect(counts).prefixes
        assert hhh <= heavy

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            heavy_hitter_prefixes({1: 5}, -1)
