"""Randomized property: vectorized hashes are bit-exact scalar twins.

The batch engine's correctness rests on ``function_array``/``sign_array``
agreeing with their scalar counterparts for *every* seed, function index,
range size, and key — including the uint64 wrap of negative and
arbitrary-precision keys.  ~200 random seeds per family; no external
property-testing dependency (plain ``numpy.random``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing.families import MixerFamily, MultiplyShiftFamily
from repro.hashing.mixers import splitmix64, splitmix64_array

pytestmark = pytest.mark.slow

NUM_SEEDS = 200
KEYS_PER_SEED = 64

FAMILIES = (MultiplyShiftFamily, MixerFamily)


def _random_keys(rng: np.random.Generator) -> np.ndarray:
    """Keys spanning the whole uint64 domain, small values included."""
    wide = rng.integers(0, 1 << 64, size=KEYS_PER_SEED, dtype=np.uint64)
    small = rng.integers(0, 1 << 16, size=8, dtype=np.uint64)
    return np.concatenate([wide, small])


@pytest.mark.parametrize("family_cls", FAMILIES)
@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_function_array_matches_scalar(family_cls, seed):
    rng = np.random.default_rng(seed)
    family = family_cls(seed=int(rng.integers(0, 1 << 31)))
    index = int(rng.integers(0, 8))
    range_size = int(rng.integers(1, 1 << 20))
    scalar = family.function(index, range_size)
    vector = family.function_array(index, range_size)
    keys = _random_keys(rng)
    got = vector(keys)
    expected = [scalar(int(k)) for k in keys.tolist()]
    assert got.tolist() == expected


@pytest.mark.parametrize("family_cls", FAMILIES)
@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_sign_array_matches_scalar(family_cls, seed):
    rng = np.random.default_rng(seed ^ 0xA5A5)
    family = family_cls(seed=int(rng.integers(0, 1 << 31)))
    index = int(rng.integers(0, 8))
    scalar = family.sign_function(index)
    vector = family.sign_array(index)
    keys = _random_keys(rng)
    got = vector(keys)
    assert set(np.unique(got)) <= {-1, 1}
    expected = [scalar(int(k)) for k in keys.tolist()]
    assert got.tolist() == expected


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_splitmix64_array_matches_scalar(seed):
    rng = np.random.default_rng(seed ^ 0x5151)
    keys = _random_keys(rng)
    got = splitmix64_array(keys)
    expected = [splitmix64(int(k)) for k in keys.tolist()]
    assert got.tolist() == expected


@pytest.mark.parametrize("family_cls", FAMILIES)
def test_negative_and_bignum_keys_agree_via_uint64_wrap(family_cls):
    """Scalar functions reduce any Python int mod 2^64; the vectorized twin
    sees the wrapped uint64 column and must land in the same cell."""
    family = family_cls(seed=7)
    scalar = family.function(0, 4096)
    vector = family.function_array(0, 4096)
    mask = (1 << 64) - 1
    for key in (-1, -12345, 1 << 64, (1 << 80) + 17):
        wrapped = np.asarray([key & mask], dtype=np.uint64)
        assert vector(wrapped)[0] == scalar(key)
