"""Churn stress: dozens of tenants admitted and retired while the serve
runtime is iterating — including tenants that fail midstream — and every
survivor's emission stream stays byte-identical to a standalone serial
pipeline over the same spec."""

import pytest

from tests.stream.test_serve import (
    CHUNK,
    EMIT,
    PHI,
    ExplodingMidstream,
    _serial_emissions,
    _strip,
)

from repro.stream import ServeRuntime

pytestmark = pytest.mark.slow

TOTAL = 24
INITIAL = 6
MAX_PACKETS = 3000
#: Admitted tenants that the hook later retires mid-run (excluded from
#: the survivor comparison) and tenants whose detector explodes.
RETIRED = {"t02", "t10", "t18"}
FAILING = {"t05", "t13", "t21"}


def _spec(i):
    scenario = "drift" if i % 2 == 0 else "zipf"
    return f"{scenario}:duration=6,seed={100 + i}"


def test_churning_tenant_fleet_survivors_match_serial():
    names = [f"t{i:02d}" for i in range(TOTAL)]
    specs = {name: _spec(i) for i, name in enumerate(names)}
    reference = {
        name: _serial_emissions(specs[name], shards=3,
                                max_packets=MAX_PACKETS)
        for name in names
        if name not in RETIRED and name not in FAILING
    }

    with ServeRuntime(workers=3, shards=3, chunk_size=CHUNK) as runtime:

        def admit(name):
            detector = (
                ExplodingMidstream(50) if name in FAILING else "countmin-hh"
            )
            runtime.add_tenant(name, detector, specs[name], emit=EMIT,
                               phi=PHI, max_packets=MAX_PACKETS)

        for name in names[:INITIAL]:
            admit(name)
        pending = list(names[INITIAL:])
        # Admission every 2nd turn; retirements at fixed turns far enough
        # in that the targets are registered (their state — live, done, or
        # already failed — is whatever the churn produced).
        retire_at = {20: "t02", 50: "t10", 80: "t18"}

        def churn(turn):
            if turn % 2 == 0 and pending:
                admit(pending.pop(0))
            name = retire_at.get(turn)
            if name is not None and name not in runtime.failed:
                runtime.retire_tenant(name, checkpoint=False)

        runtime.on_turn = churn
        observed = {name: [] for name in names}
        for name, emission in runtime.run():
            observed[name].append(_strip(emission))
        assert not pending, "churn schedule never drained"
        assert set(runtime.failed) == FAILING

    for name, expected in reference.items():
        assert observed[name] == expected, name
        for mine, theirs in zip(observed[name], expected):
            assert list(mine.report.items()) == list(theirs.report.items())
    # Sanity: the comparison covered a real fleet, and most tenants emit.
    assert len(reference) == TOTAL - len(RETIRED) - len(FAILING)
    assert sum(bool(v) for v in reference.values()) >= len(reference) // 2
