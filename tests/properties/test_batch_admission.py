"""Randomized property: batch admission is the scalar stream, replayed.

The pointer-based detector family (flat-table Space-Saving and friends,
the HashPipe run-length path, the level-sampling HHH structures, UnivMon's
level fan-out, and Count-Min heavy-hitter candidate simulation) vectorizes
chunk prefixes and replays only eviction/admission tails.  This suite pits
that machinery against the per-packet scalar path under adversarial
conditions: tiny capacities (every chunk is an eviction storm),
duplicate-heavy key distributions, and random chunk boundaries including
sub-cutoff slivers.  ~200 randomized cases across the family; exact
equality where the scalar path is deterministic over integer weights,
1e-9 relative tolerance for the decayed structures (``np.exp`` vs
``math.exp`` rounding).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import get_spec

pytestmark = pytest.mark.slow

SEEDS_PER_DETECTOR = 25
KEY_DOMAIN = 24

# (factory kwargs, exact) — capacities sit below the key domain so chunks
# constantly evict, and geometries stay small so collisions are common.
CASES = {
    "spacesaving": ({"capacity": 16}, True),
    "misragries": ({"capacity": 16}, True),
    "hashpipe": ({"stage_slots": 16, "stages": 3}, True),
    "rhhh": ({"counters_per_level": 16}, True),
    "univmon": ({"levels": 4, "width": 64, "rows": 3, "top_k": 8}, True),
    "countmin-hh": ({"width": 64, "rows": 3, "track_phi": 0.05}, True),
    "decayed-spacesaving": ({"capacity": 16}, False),
    "sliding-spacesaving": (
        {"window": 5.0, "num_buckets": 4, "capacity_per_bucket": 16}, False
    ),
    "td-hhh": ({"counters_per_level": 16}, False),
}


def _random_stream(rng: np.random.Generator):
    """Duplicate-heavy (keys, weights, ts) with skewed key popularity."""
    n = int(rng.integers(80, 400))
    ranks = np.arange(1, KEY_DOMAIN + 1, dtype=np.float64)
    popularity = (1.0 / ranks) / (1.0 / ranks).sum()
    keys = rng.choice(KEY_DOMAIN, size=n, p=popularity).astype(np.int64)
    weights = rng.integers(1, 64, size=n, dtype=np.int64)
    ts = np.sort(rng.uniform(0.0, 30.0, size=n))
    return keys, weights, ts


def _random_chunks(rng: np.random.Generator, n: int):
    """Random chunk boundaries, sliver chunks (below the scalar cutoff)
    included."""
    num_cuts = int(rng.integers(1, 8))
    cuts = np.unique(rng.integers(1, n, size=num_cuts))
    bounds = np.r_[0, cuts, n]
    return list(zip(bounds[:-1].tolist(), bounds[1:].tolist()))


@pytest.mark.parametrize("seed", range(SEEDS_PER_DETECTOR))
@pytest.mark.parametrize("name", sorted(CASES))
def test_batch_admission_matches_scalar(name, seed):
    kwargs, exact = CASES[name]
    spec = get_spec(name)
    rng = np.random.default_rng(sum(map(ord, name)) * 1000 + seed)
    keys, weights, ts = _random_stream(rng)
    n = keys.shape[0]

    scalar_det = spec.factory(**kwargs)
    batch_det = spec.factory(**kwargs)
    for key, weight, t in zip(keys.tolist(), weights.tolist(), ts.tolist()):
        if spec.timestamped:
            scalar_det.update(key, weight, t)
        else:
            scalar_det.update(key, weight)
    for i, j in _random_chunks(rng, n):
        batch_det.update_batch(
            keys[i:j], weights[i:j], ts[i:j] if spec.timestamped else None
        )

    now = float(ts[-1]) + 0.1
    for key in range(KEY_DOMAIN):
        expected = spec.estimate(scalar_det, key, now)
        got = spec.estimate(batch_det, key, now)
        if exact:
            assert got == expected, (name, seed, key)
        else:
            assert got == pytest.approx(expected, rel=1e-9, abs=1e-12), (
                name, seed, key,
            )

    if spec.enumerable:
        if spec.timestamped:
            scalar_report = scalar_det.query(1.0, now)
            batch_report = batch_det.query(1.0, now)
        else:
            scalar_report = scalar_det.query(1.0)
            batch_report = batch_det.query(1.0)
        assert set(scalar_report) == set(batch_report), (name, seed)
        for key, value in scalar_report.items():
            assert batch_report[key] == pytest.approx(value, rel=1e-9), (
                name, seed, key,
            )
