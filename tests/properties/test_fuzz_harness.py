"""Randomized property: the equivalence fuzz harness, end to end.

Two claims, both over the *real* stack:

1. **Sensitivity** — against a toy detector with a deliberately injected
   batch/scalar off-by-one, a seeded fuzz run finds the divergence,
   shrinks it to a small (<= 64-packet) reproducer, and the serialized
   ``repro-hhh/fuzz-case/v1`` artifact replays it deterministically from
   disk alone.
2. **Specificity** — a full seeded budget run over the actual detector
   registry covers every equivalence axis and many detectors and finds
   *zero* divergences (the acceptance gate ``repro-hhh fuzz --budget-s 5
   --seed 0`` enforces in CI).
"""

from __future__ import annotations

import pytest

from repro.core.detector import Detector, as_batch
from repro.core.registry import _REGISTRY, register_detector
from repro.fuzz import (
    FuzzHarness,
    read_case,
    replay_case,
    write_case,
)

pytestmark = pytest.mark.slow


class BrokenCounter(Detector):
    """Exact counter whose batch path drops the last packet of any batch
    of >= 40 packets."""

    def __init__(self):
        self.counts = {}

    def update(self, key, weight=1, ts=None):
        self.counts[key] = self.counts.get(key, 0) + weight

    def update_batch(self, keys, weights=None, ts=None):
        keys, weights, _ = as_batch(keys, weights, ts)
        if len(keys) >= 40:
            keys, weights = keys[:-1], weights[:-1]
        for key, weight in zip(keys.tolist(), weights.tolist()):
            self.update(key, weight)

    def query(self, threshold, now=None):
        return {
            key: float(count)
            for key, count in sorted(self.counts.items())
            if count >= threshold
        }

    def reset(self):
        self.counts = {}

    @property
    def num_counters(self):
        return len(self.counts)


@pytest.fixture
def broken_toy():
    register_detector(
        "broken-toy", BrokenCounter,
        description="test-only: batch path drops packets",
    )
    try:
        yield "broken-toy"
    finally:
        _REGISTRY.pop("broken-toy", None)


class TestInjectedDivergence:
    def test_harness_finds_shrinks_and_replays(self, broken_toy, tmp_path):
        harness = FuzzHarness(
            seed=3, max_pairs=8,
            detectors=["broken-toy"], axes=["chunking"],
        )
        report = harness.run()
        assert report.pairs == 8
        assert report.cases, "injected off-by-one was not detected"

        # The bug triggers on one >= 40-packet chunk, so at least one
        # minimised reproducer needs no more than 64 packets.
        takes = [case.plan_a.take for case in report.cases]
        assert min(takes) <= 64
        assert any(case.shrunk for case in report.cases)

        # Serialize, reload, replay: the artifact alone reproduces it.
        case = min(report.cases, key=lambda c: c.plan_a.take)
        path = write_case(case, tmp_path / "case.json")
        loaded = read_case(path)
        first = replay_case(loaded)
        assert first is not None
        assert first.axis == "chunking"
        assert replay_case(loaded) == first   # deterministic

    def test_divergences_counted_per_axis(self, broken_toy):
        report = FuzzHarness(
            seed=3, max_pairs=6,
            detectors=["broken-toy"], axes=["chunking"],
        ).run()
        assert report.axis_divergences.get("chunking", 0) == len(report.cases)
        assert report.divergences == len(report.cases)


class TestRegistryIsClean:
    def test_budget_run_finds_nothing(self):
        # The acceptance gate, in-process: a 5-second seeded budget must
        # cover the space (>= 20 pairs, >= 5 detectors, every axis) and
        # observe zero equivalence violations across the real registry.
        report = FuzzHarness(seed=0, budget_s=5.0).run()
        assert report.pairs >= 20
        assert len(report.detectors_covered) >= 5
        assert set(report.axes_covered) == {
            "chunking", "sharding", "checkpoint", "serve", "merge-order",
            "serve-churn", "serve-crash",
        }
        assert report.divergences == 0, [
            case.describe() for case in report.cases
        ]
        assert not report.errors

    @pytest.mark.parametrize("seed", [1, 2])
    def test_other_seeds_also_clean(self, seed):
        report = FuzzHarness(seed=seed, max_pairs=25).run()
        assert report.pairs == 25
        assert report.divergences == 0, [
            case.describe() for case in report.cases
        ]
        assert not report.errors
