"""Randomized property: splitmix64 partitioning is a stable permutation.

For any batch and shard count, :func:`repro.engine.partition.partition_batch`
must route every row to exactly one shard sub-batch (the concatenation is a
permutation of the input — nothing dropped, nothing duplicated), agree with
the scalar :func:`shard_of_key` routing row by row, and keep each shard's
rows in original (time) order.  ~200 random seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.partition import partition_batch, shard_ids, shard_of_key

pytestmark = pytest.mark.slow

NUM_SEEDS = 200


def _random_batch(rng: np.random.Generator):
    n = int(rng.integers(1, 600))
    keys = rng.integers(0, 1 << 32, size=n, dtype=np.uint64)
    # Duplicate some keys so shards see repeated rows (the common case).
    if n > 8:
        dup = rng.integers(0, n, size=n // 4)
        keys[dup] = keys[int(rng.integers(0, n))]
    weights = rng.integers(1, 1500, size=n).astype(np.int64)
    ts = np.sort(rng.uniform(0.0, 60.0, size=n))
    return keys, weights, ts


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_partition_is_a_stable_permutation(seed):
    rng = np.random.default_rng(seed)
    keys, _, ts = _random_batch(rng)
    num_shards = int(rng.integers(1, 10))
    n = len(keys)
    # Carry each row's original index through the weight column so identity
    # survives the partition.
    identity = np.arange(n, dtype=np.int64)
    parts = partition_batch(keys, identity, ts, num_shards)

    assert len(parts) == num_shards
    gathered = np.concatenate([part[1] for part in parts])
    # Every index lands in exactly one shard sub-batch: a permutation.
    assert len(gathered) == n
    assert np.array_equal(np.sort(gathered), identity)
    for shard, (part_keys, part_idx, part_ts) in enumerate(parts):
        # Row-by-row agreement with the scalar routing twin.
        for key in part_keys.tolist():
            assert shard_of_key(int(key), num_shards) == shard
        # Stability: original relative order (time order) is preserved.
        assert np.all(np.diff(part_idx) > 0)
        assert np.all(np.diff(part_ts) >= 0)


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_shard_ids_matches_scalar_routing(seed):
    rng = np.random.default_rng(seed ^ 0x517A)
    keys = rng.integers(0, 1 << 64, size=256, dtype=np.uint64)
    num_shards = int(rng.integers(1, 12))
    ids = shard_ids(keys, num_shards)
    assert ids.min() >= 0 and ids.max() < num_shards
    expected = [shard_of_key(int(k), num_shards) for k in keys.tolist()]
    assert ids.tolist() == expected


def test_single_shard_passes_columns_through():
    keys = np.arange(10, dtype=np.uint64)
    weights = np.ones(10, dtype=np.int64)
    parts = partition_batch(keys, weights, None, 1)
    assert len(parts) == 1
    assert parts[0][0] is keys and parts[0][1] is weights
    assert parts[0][2] is None
