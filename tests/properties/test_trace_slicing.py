"""Randomized property: Trace slicing round-trips.

Adjacent index/time slices must reassemble to the original columns exactly
(no packet lost, duplicated, or reordered), ``slice_time`` must agree with
``index_range`` + ``slice_index``, and slicing must compose.  ~200 random
seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace.container import Trace

pytestmark = pytest.mark.slow

NUM_SEEDS = 200

_COLUMNS = Trace.__slots__


def _random_trace(rng: np.random.Generator) -> Trace:
    n = int(rng.integers(0, 400))
    ts = np.sort(rng.uniform(0.0, 30.0, size=n))
    # Repeated timestamps exercise the searchsorted tie-breaking.
    if n > 10:
        ts[n // 2] = ts[n // 2 - 1]
    return Trace(
        ts,
        rng.integers(0, 1 << 32, size=n, dtype=np.uint32),
        rng.integers(0, 1 << 32, size=n, dtype=np.uint32),
        rng.integers(40, 1500, size=n).astype(np.int64),
        rng.integers(0, 1 << 16, size=n, dtype=np.uint16),
        rng.integers(0, 1 << 16, size=n, dtype=np.uint16),
        rng.integers(0, 255, size=n, dtype=np.uint8),
    )


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_index_slices_reassemble_exactly(seed):
    rng = np.random.default_rng(seed)
    trace = _random_trace(rng)
    n = len(trace)
    cuts = sorted(
        {0, n, *map(int, rng.integers(0, n + 1, size=3))}
    )
    pieces = [
        trace.slice_index(i, j) for i, j in zip(cuts, cuts[1:])
    ]
    for column in _COLUMNS:
        rebuilt = (
            np.concatenate([getattr(p, column) for p in pieces])
            if pieces else np.empty(0)
        )
        assert np.array_equal(rebuilt, getattr(trace, column))


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_time_slices_match_index_range(seed):
    rng = np.random.default_rng(seed ^ 0x7CE)
    trace = _random_trace(rng)
    t0, t1 = sorted(rng.uniform(-1.0, 31.0, size=2))
    by_time = trace.slice_time(t0, t1)
    i, j = trace.index_range(t0, t1)
    by_index = trace.slice_index(i, j)
    for column in _COLUMNS:
        assert np.array_equal(
            getattr(by_time, column), getattr(by_index, column)
        )
    if len(by_time):
        assert by_time.start_time >= t0
        assert by_time.end_time < t1


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_slicing_composes(seed):
    rng = np.random.default_rng(seed ^ 0xC0B)
    trace = _random_trace(rng)
    n = len(trace)
    i, j = sorted(map(int, rng.integers(0, n + 1, size=2)))
    outer = trace.slice_index(i, j)
    m = len(outer)
    a, b = sorted(map(int, rng.integers(0, m + 1, size=2)))
    inner = outer.slice_index(a, b)
    direct = trace.slice_index(i + a, i + b)
    for column in _COLUMNS:
        assert np.array_equal(
            getattr(inner, column), getattr(direct, column)
        )


def test_full_slice_is_the_whole_trace():
    rng = np.random.default_rng(0)
    trace = _random_trace(rng)
    full = trace.slice_time(trace.start_time, trace.end_time + 1.0)
    assert len(full) == len(trace)
