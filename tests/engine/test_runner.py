"""ParallelRunner: serial and process backends end in identical states."""

import numpy as np
import pytest

from repro.core import make_detector
from repro.engine import ParallelRunner, ShardedDetector, partition_batch


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(31)
    keys = rng.integers(0, 2**32, size=1500, dtype=np.uint64)
    weights = rng.integers(40, 1500, size=1500, dtype=np.int64)
    return keys, weights


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        ParallelRunner("threads")


def test_bad_worker_count_rejected():
    with pytest.raises(ValueError, match="workers"):
        ParallelRunner("process", workers=0)


def test_serial_updates_in_place(columns):
    keys, weights = columns
    shards = [make_detector("countmin") for _ in range(3)]
    parts = partition_batch(keys, weights, None, 3)
    runner = ParallelRunner("serial")
    updated = runner.update_shards(shards, parts)
    assert [id(s) for s in updated] == [id(s) for s in shards]
    assert sum(s.total for s in updated) == int(weights.sum())


def test_part_shard_mismatch_rejected(columns):
    keys, weights = columns
    shards = [make_detector("countmin") for _ in range(3)]
    parts = partition_batch(keys, weights, None, 2)
    with pytest.raises(ValueError, match="parts"):
        ParallelRunner("serial").update_shards(shards, parts)


def test_process_backend_matches_serial(columns):
    """The process pool ships shards out and back with bit-identical
    resulting state (detectors pickle whole, hash functions included)."""
    keys, weights = columns
    serial = ShardedDetector(lambda: make_detector("countmin"), 3)
    serial.update_batch(keys, weights)
    with ParallelRunner("process", workers=2) as runner:
        parallel = ShardedDetector(
            lambda: make_detector("countmin"), 3, runner=runner
        )
        parallel.update_batch(keys, weights)
        # Second batch through the same persistent pool.
        serial.update_batch(keys[:200], weights[:200])
        parallel.update_batch(keys[:200], weights[:200])
    for a, b in zip(serial.shards, parallel.shards):
        assert (a._table == b._table).all()
        assert a.total == b.total


def test_process_backend_skips_empty_parts(columns):
    """Shards with no rows in a batch are never shipped: their object
    identity is preserved across a process-backend update."""
    keys, weights = columns
    with ParallelRunner("process", workers=2) as runner:
        sharded = ShardedDetector(
            lambda: make_detector("countmin"), 4, runner=runner
        )
        before = list(sharded.shards)
        # Route everything to one shard by using a single repeated key.
        one_key = np.full(50, keys[0], dtype=np.uint64)
        sharded.update_batch(one_key, weights[:50])
        untouched = [
            i for i, (a, b) in enumerate(zip(before, sharded.shards))
            if a is b
        ]
        assert len(untouched) == 3


def test_close_is_idempotent():
    runner = ParallelRunner("serial")
    runner.close()
    runner.close()


def test_abandoned_process_pool_is_swept():
    """An abandoned runner's executor is shut down by the GC/atexit
    guard, so a leaked pool cannot hang interpreter exit."""
    from repro.engine.runner import _LIVE_RUNNERS

    runner = ParallelRunner("process", workers=1)
    runner.map_tasks(len, [[1, 2], [3]])  # spin the pool up
    assert runner in _LIVE_RUNNERS
    pool = runner._pool
    runner.__del__()
    assert runner._pool is None
    assert runner not in _LIVE_RUNNERS
    # The executor itself was shut down, not just dropped.
    with pytest.raises(RuntimeError):
        pool.submit(len, [1])


def test_close_after_close_with_live_pool():
    runner = ParallelRunner("process", workers=1)
    runner.map_tasks(len, [[1]])
    runner.close()
    runner.close()
    assert runner._pool is None
