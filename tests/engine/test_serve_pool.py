"""The persistent shard-worker pool: shared-memory transport, serial
equivalence, checkpoint interop, and tenant-scoped failure isolation."""

import pickle
from functools import partial

import numpy as np
import pytest

from repro.core import make_detector
from repro.core.checkpoint import STATE_SCHEMA, CheckpointError
from repro.core.detector import Detector
from repro.engine import (
    ChunkRing,
    ServeError,
    ServePool,
    ShardedDetector,
    TenantError,
)

FACTORY = partial(make_detector, "countmin-hh")


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(11)
    n = 6000
    return (
        rng.integers(0, 400, size=n).astype(np.uint32),
        rng.integers(40, 1500, size=n).astype(np.int64),
        np.cumsum(rng.random(n) * 1e-3),
    )


class ExplodingDetector(Detector):
    """Fails every update past ``limit`` packets (picklable, for tenant
    failure-isolation tests)."""

    def __init__(self, limit: int = 1000) -> None:
        self.inner = make_detector("countmin-hh")
        self.limit = limit
        self.seen = 0

    def update(self, key, weight=1, ts=None):
        self.update_batch([key], [weight], None if ts is None else [ts])

    def update_batch(self, keys, weights=None, ts=None):
        self.seen += len(keys)
        if self.seen > self.limit:
            raise RuntimeError("detector exploded")
        self.inner.update_batch(keys, weights, ts)

    def query(self, threshold, now=None):
        return self.inner.query(threshold)

    def reset(self):
        self.inner.reset()
        self.seen = 0

    def save_state(self):
        return self.inner.save_state()

    def load_state(self, state):
        self.inner.load_state(state)

    @property
    def num_counters(self):
        return self.inner.num_counters


class TestChunkRing:
    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError, match="capacity"):
            ChunkRing(0)
        with pytest.raises(ValueError, match="slots"):
            ChunkRing(16, 1)

    def test_views_are_bounded(self):
        ring = ChunkRing(16, 2)
        try:
            with pytest.raises(ValueError, match="slot"):
                ring.views(2, 4)
            with pytest.raises(ValueError, match="n must"):
                ring.views(0, 17)
        finally:
            ring.close()

    def test_attached_ring_shares_pages(self):
        owner = ChunkRing(8, 2)
        reader = ChunkRing(8, 2, name=owner.name)
        try:
            keys, weights, ts = owner.views(1, 3)
            keys[:] = [7, 8, 9]
            weights[:] = [1, 2, 3]
            ts[:] = [0.5, 0.6, 0.7]
            rk, rw, rt = reader.views(1, 3)
            assert rk.tolist() == [7, 8, 9]
            assert rw.tolist() == [1, 2, 3]
            assert rt.tolist() == [0.5, 0.6, 0.7]
        finally:
            reader.close()
            owner.close()

    def test_close_is_idempotent(self):
        ring = ChunkRing(8, 2)
        ring.close()
        ring.close()
        with pytest.raises(RuntimeError, match="closed"):
            ring.views(0, 1)


class TestPoolShape:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="workers"):
            ServePool(0)
        with pytest.raises(ValueError, match="shards"):
            ServePool(1, 0)
        with pytest.raises(ValueError, match="idle workers"):
            ServePool(4, 2)

    def test_shards_default_to_workers_and_round_robin(self):
        with ServePool(2, 5, chunk_capacity=64) as pool:
            assert pool.owned == ((0, 2, 4), (1, 3))
        with ServePool(2, chunk_capacity=64) as pool:
            assert pool.num_shards == 2

    def test_close_is_idempotent_and_fences_commands(self):
        pool = ServePool(1, chunk_capacity=64)
        pool.close()
        pool.close()
        with pytest.raises(ServeError, match="closed"):
            pool.open_tenant("t", FACTORY)


class TestSerialEquivalence:
    @pytest.mark.parametrize("workers,shards", [(1, 1), (1, 3), (2, 3)])
    def test_reports_match_sharded_detector(self, columns, workers, shards):
        """Same chunks, same shard layout: the serve report equals the
        serial sharded report including dict insertion order."""
        keys, weights, ts = columns
        reference = ShardedDetector(FACTORY, shards)
        with ServePool(workers, shards, chunk_capacity=2000) as pool:
            detector = pool.open_tenant("t", FACTORY)
            for start in range(0, len(keys), 2000):
                sl = slice(start, start + 2000)
                reference.update_batch(keys[sl], weights[sl], ts[sl])
                detector.update_batch(keys[sl], weights[sl], ts[sl])
            expected = reference.query(5000.0)
            assert list(detector.query(5000.0).items()) == list(
                expected.items()
            )
            assert detector.num_counters == reference.num_counters

    def test_single_destination_chunk_skips_nothing(self, columns):
        """A chunk whose keys all route to one shard still lands whole."""
        _, weights, ts = columns
        keys = np.full(500, 77, dtype=np.uint64)
        reference = ShardedDetector(FACTORY, 4)
        reference.update_batch(keys, weights[:500], ts[:500])
        with ServePool(2, 4, chunk_capacity=2000) as pool:
            detector = pool.open_tenant("t", FACTORY)
            detector.update_batch(keys, weights[:500], ts[:500])
            assert detector.query(100.0) == reference.query(100.0)

    def test_oversized_batches_split_by_capacity(self, columns):
        keys, weights, ts = columns
        with ServePool(2, 2, chunk_capacity=512) as pool:
            detector = pool.open_tenant("t", FACTORY)
            detector.update_batch(keys, weights, ts)  # 6000 > 512
            reference = ShardedDetector(FACTORY, 2)
            for start in range(0, len(keys), 512):
                sl = slice(start, start + 512)
                reference.update_batch(keys[sl], weights[sl], ts[sl])
            assert detector.query(5000.0) == reference.query(5000.0)

    def test_scalar_update_and_reset(self, columns):
        with ServePool(1, 2, chunk_capacity=64) as pool:
            detector = pool.open_tenant("t", FACTORY)
            detector.update(42, 100.0)
            assert detector.query(1.0) == {42: 100.0}
            detector.reset()
            assert detector.query(0.0) == {}

    def test_non_integer_keys_rejected(self):
        with ServePool(1, chunk_capacity=64) as pool:
            detector = pool.open_tenant("t", FACTORY)
            with pytest.raises(ServeError, match="integer key"):
                detector.update_batch(np.array([1.5, 2.5]))


class TestCheckpointInterop:
    def test_envelope_round_trips_with_sharded_detector(self, columns):
        """serve -> serial and serial -> serve restores are bit-identical
        (the pool emits the ShardedDetector envelope)."""
        keys, weights, ts = columns
        reference = ShardedDetector(FACTORY, 3)
        reference.update_batch(keys, weights, ts)
        with ServePool(2, 3, chunk_capacity=len(keys)) as pool:
            detector = pool.open_tenant("t", FACTORY)
            detector.update_batch(keys, weights, ts)
            state = detector.save_state()
            assert state["schema"] == STATE_SCHEMA
            assert state["detector"] == "ShardedDetector"
            restored = ShardedDetector(FACTORY, 3)
            restored.load_state(state)
            assert restored.query(5000.0) == reference.query(5000.0)

            detector.reset()
            detector.load_state(reference.save_state())
            assert detector.query(5000.0) == reference.query(5000.0)

    def test_restores_across_worker_counts(self, columns):
        """The artifact captures logical shards, not worker layout: a
        2-worker pool's state restores onto a 1-worker pool verbatim."""
        keys, weights, ts = columns
        with ServePool(2, 4, chunk_capacity=len(keys)) as pool:
            detector = pool.open_tenant("t", FACTORY)
            detector.update_batch(keys, weights, ts)
            state = detector.save_state()
            expected = list(detector.query(5000.0).items())
        state = pickle.loads(pickle.dumps(state))
        with ServePool(1, 4, chunk_capacity=len(keys)) as pool:
            detector = pool.open_tenant("t", FACTORY)
            detector.load_state(state)
            assert list(detector.query(5000.0).items()) == expected

    def test_rejects_mismatched_artifacts(self, columns):
        with ServePool(1, 2, chunk_capacity=64) as pool:
            detector = pool.open_tenant("t", FACTORY)
            with pytest.raises(CheckpointError, match="artifact"):
                detector.load_state({"schema": "bogus"})
            with pytest.raises(CheckpointError, match="ShardedDetector"):
                detector.load_state(make_detector("countmin-hh").save_state())
            wrong = ShardedDetector(FACTORY, 3).save_state()
            with pytest.raises(CheckpointError, match="3 shards"):
                detector.load_state(wrong)


class TestTenantIsolation:
    def test_unknown_tenant_fails_without_killing_the_pool(self, columns):
        keys, weights, ts = columns
        with ServePool(2, 2, chunk_capacity=len(keys)) as pool:
            detector = pool.open_tenant("t", FACTORY)
            detector.update_batch(keys, weights, ts)
            with pytest.raises(TenantError, match="ghost"):
                pool.query("ghost", 1.0)
            # The pool and the healthy tenant are untouched.
            assert len(detector.query(5000.0)) > 0

    def test_duplicate_open_rejected(self):
        with ServePool(1, chunk_capacity=64) as pool:
            pool.open_tenant("t", FACTORY)
            with pytest.raises(ServeError, match="already open"):
                pool.open_tenant("t", FACTORY)

    def test_async_update_failure_is_deferred_to_the_tenant(self, columns):
        """A worker-side update explosion surfaces as a TenantError on the
        *failing* tenant's next sync op; the sibling keeps serving."""
        keys, weights, ts = columns
        with ServePool(2, 2, chunk_capacity=1000) as pool:
            bad = pool.open_tenant("bad", partial(ExplodingDetector, 500))
            good = pool.open_tenant("good", FACTORY)
            for start in range(0, 4000, 1000):
                sl = slice(start, start + 1000)
                bad.update_batch(keys[sl], weights[sl], ts[sl])
                good.update_batch(keys[sl], weights[sl], ts[sl])
            with pytest.raises(TenantError, match="exploded"):
                bad.query(1.0)
            pool.close_tenant("bad")
            reference = ShardedDetector(FACTORY, 2)
            for start in range(0, 4000, 1000):
                sl = slice(start, start + 1000)
                reference.update_batch(keys[sl], weights[sl], ts[sl])
            assert good.query(5000.0) == reference.query(5000.0)

    def test_take_tenant_errors_drains_the_backlog(self, columns):
        keys, weights, ts = columns
        with ServePool(1, 2, chunk_capacity=1000) as pool:
            bad = pool.open_tenant("bad", partial(ExplodingDetector, 100))
            bad.update_batch(keys[:1000], weights[:1000], ts[:1000])
            pool.barrier()
            errors = pool.take_tenant_errors()
            assert errors and errors[0][0] == "bad"
            assert "exploded" in errors[0][1]
            assert pool.take_tenant_errors() == []
