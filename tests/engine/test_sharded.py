"""ShardedDetector: the Detector contract over key-partitioned replicas."""

import numpy as np
import pytest

from repro.core import detector_names, get_spec, make_detector
from repro.engine import ShardedDetector, shard_of_key, sharded_factory


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(23)
    keys = rng.integers(0, 2**32, size=1200, dtype=np.uint64)
    weights = rng.integers(40, 1500, size=1200, dtype=np.int64)
    ts = np.sort(rng.uniform(0.0, 30.0, size=1200))
    return keys, weights, ts


def test_scalar_update_routes_like_batch(stream):
    """Per-packet and columnar ingestion land every key on the same shard
    with identical shard state."""
    keys, weights, _ = stream
    one = ShardedDetector(lambda: make_detector("countmin"), 4)
    two = ShardedDetector(lambda: make_detector("countmin"), 4)
    for key, weight in zip(keys.tolist(), weights.tolist()):
        one.update(key, weight)
    two.update_batch(keys, weights)
    for a, b in zip(one.shards, two.shards):
        assert (a._table == b._table).all()
        assert a.total == b.total


def test_estimate_routes_to_owning_shard(stream):
    keys, weights, _ = stream
    sharded = ShardedDetector(lambda: make_detector("countmin"), 4)
    sharded.update_batch(keys, weights)
    for key in keys[:100].tolist():
        owner = sharded.shards[shard_of_key(key, 4)]
        assert sharded.estimate(key) == owner.estimate(key)


def test_shard_estimates_bounded_by_single_stream(stream):
    """A shard's table holds only its own keys, so its (still one-sided)
    estimate never exceeds the single-stream estimate."""
    keys, weights, _ = stream
    single = make_detector("countmin")
    single.update_batch(keys, weights)
    sharded = ShardedDetector(lambda: make_detector("countmin"), 4)
    sharded.update_batch(keys, weights)
    true = {}
    for key, weight in zip(keys.tolist(), weights.tolist()):
        true[key] = true.get(key, 0) + weight
    for key, volume in list(true.items())[:200]:
        assert volume <= sharded.estimate(key) <= single.estimate(key)


def test_query_is_union_of_disjoint_shard_reports(stream):
    """Per-shard reports are key-disjoint and their union is the sharded
    report."""
    keys, weights, _ = stream
    small = keys % np.uint64(40)  # few distinct keys → enumerable reports
    sharded = ShardedDetector(lambda: make_detector("spacesaving"), 3)
    sharded.update_batch(small, weights)
    reports = [shard.query(10_000.0) for shard in sharded.shards]
    seen: set[int] = set()
    for report in reports:
        assert not (seen & set(report))
        seen |= set(report)
    combined = sharded.query(10_000.0)
    assert set(combined) == seen


def test_spacesaving_report_matches_single_stream_when_capacity_suffices(
    stream,
):
    keys, weights, _ = stream
    small = keys % np.uint64(40)
    single = make_detector("spacesaving")
    single.update_batch(small, weights)
    sharded = ShardedDetector(lambda: make_detector("spacesaving"), 3)
    sharded.update_batch(small, weights)
    assert single.query(10_000.0) == sharded.query(10_000.0)


def test_merged_reproduces_single_stream_countmin(stream):
    keys, weights, _ = stream
    single = make_detector("countmin")
    single.update_batch(keys, weights)
    sharded = ShardedDetector(lambda: make_detector("countmin"), 4)
    sharded.update_batch(keys, weights)
    merged = sharded.merged()
    assert (merged._table == single._table).all()
    assert merged.total == single.total


def test_merge_shardwise(stream):
    """Merging two ShardedDetectors equals one that saw both streams."""
    keys, weights, _ = stream
    half = len(keys) // 2
    both = ShardedDetector(lambda: make_detector("countmin"), 3)
    both.update_batch(keys, weights)
    first = ShardedDetector(lambda: make_detector("countmin"), 3)
    first.update_batch(keys[:half], weights[:half])
    second = ShardedDetector(lambda: make_detector("countmin"), 3)
    second.update_batch(keys[half:], weights[half:])
    first.merge(second)
    for a, b in zip(first.shards, both.shards):
        assert (a._table == b._table).all()


def test_merge_rejects_mismatched_shard_count():
    a = ShardedDetector(lambda: make_detector("countmin"), 2)
    b = ShardedDetector(lambda: make_detector("countmin"), 3)
    with pytest.raises(ValueError, match="shard count"):
        a.merge(b)


def test_reset_clears_every_shard(stream):
    keys, weights, _ = stream
    sharded = ShardedDetector(lambda: make_detector("countmin"), 3)
    sharded.update_batch(keys, weights)
    sharded.reset()
    assert all(shard.total == 0 for shard in sharded.shards)
    assert sharded.estimate(int(keys[0])) == 0


def test_num_counters_scales_with_shards():
    single = make_detector("countmin")
    sharded = ShardedDetector(lambda: make_detector("countmin"), 4)
    assert sharded.num_counters == 4 * single.num_counters


def test_timestamped_detector_sharding(stream):
    """Continuous-time detectors shard too: ts columns are routed with
    their rows and per-key estimates match the owning shard."""
    keys, weights, ts = stream
    sharded = ShardedDetector(lambda: make_detector("exact-decayed"), 3)
    sharded.update_batch(keys, weights.astype(np.float64), ts)
    single = make_detector("exact-decayed")
    single.update_batch(keys, weights.astype(np.float64), ts)
    now = float(ts[-1]) + 1.0
    for key in keys[:100].tolist():
        assert sharded.estimate(key, now) == pytest.approx(
            single.estimate(key, now), rel=1e-12
        )
    assert sharded.query(50_000.0, now) == pytest.approx(
        single.query(50_000.0, now)
    )


def test_empty_batch_is_noop():
    sharded = ShardedDetector(lambda: make_detector("countmin"), 3)
    sharded.update_batch(np.empty(0, dtype=np.uint64))
    assert all(shard.total == 0 for shard in sharded.shards)


def test_bad_shard_count():
    with pytest.raises(ValueError, match="num_shards"):
        ShardedDetector(lambda: make_detector("countmin"), 0)


def test_sharded_factory_builds_fresh_instances():
    factory = sharded_factory(lambda: make_detector("countmin"), 2)
    a, b = factory(), factory()
    assert a is not b
    assert a.num_shards == b.num_shards == 2
    a.update(7, 100)
    assert b.estimate(7) == 0


def test_every_registry_detector_shards(stream):
    """The sharded engine is detector-agnostic: every registry entry
    ingests a partitioned batch and answers its usual surface."""
    keys, weights, ts = stream
    for name in detector_names():
        spec = get_spec(name)
        sharded = ShardedDetector(spec.factory, 2)
        sharded.update_batch(
            keys[:200], weights[:200], ts[:200] if spec.timestamped else None
        )
        # Point estimates answer through the spec's uniform surface on the
        # owning shard.
        owner = sharded.shards[shard_of_key(int(keys[0]), 2)]
        assert spec.estimate(owner, int(keys[0]), float(ts[199])) >= 0.0
