"""Key → shard partitioning: exactness, determinism, scalar/vector parity."""

import numpy as np
import pytest

from repro.engine import partition_batch, shard_ids, shard_of_key


@pytest.fixture(scope="module")
def columns():
    rng = np.random.default_rng(11)
    keys = rng.integers(0, 2**32, size=2000, dtype=np.uint64)
    weights = rng.integers(40, 1500, size=2000, dtype=np.int64)
    ts = np.sort(rng.uniform(0.0, 60.0, size=2000))
    return keys, weights, ts


class TestShardIds:
    def test_scalar_matches_vectorized(self, columns):
        keys, _, _ = columns
        for num_shards in (1, 2, 3, 7):
            ids = shard_ids(keys, num_shards)
            for key, sid in zip(keys[:300].tolist(), ids[:300].tolist()):
                assert shard_of_key(key, num_shards) == sid

    def test_deterministic(self, columns):
        keys, _, _ = columns
        assert (shard_ids(keys, 4) == shard_ids(keys, 4)).all()

    def test_range(self, columns):
        keys, _, _ = columns
        ids = shard_ids(keys, 5)
        assert ids.min() >= 0 and ids.max() < 5

    def test_reasonable_balance(self, columns):
        """The routing hash spreads a uniform key population: no shard is
        empty and none holds the majority."""
        keys, _, _ = columns
        counts = np.bincount(shard_ids(keys, 4), minlength=4)
        assert counts.min() > 0
        assert counts.max() < len(keys) * 0.5

    def test_negative_and_huge_keys(self):
        """Object-dtype key columns (key_func outputs) route like scalars."""
        keys = np.asarray([-10, 5, 2**63 + 11, -(2**40)], dtype=np.object_)
        ids = shard_ids(keys, 3)
        for key, sid in zip([-10, 5, 2**63 + 11, -(2**40)], ids.tolist()):
            assert shard_of_key(key, 3) == sid

    def test_bad_shard_count(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_of_key(1, 0)
        with pytest.raises(ValueError, match="num_shards"):
            shard_ids(np.array([1], dtype=np.uint64), 0)


class TestPartitionBatch:
    def test_rows_partition_exactly(self, columns):
        keys, weights, ts = columns
        parts = partition_batch(keys, weights, ts, 4)
        assert sum(len(p[0]) for p in parts) == len(keys)
        ids = shard_ids(keys, 4)
        for s, (part_keys, part_weights, part_ts) in enumerate(parts):
            mask = ids == s
            assert (np.sort(part_keys) == np.sort(keys[mask])).all()
            assert part_weights.sum() == weights[mask].sum()
            assert len(part_ts) == int(mask.sum())

    def test_time_order_preserved_per_shard(self, columns):
        keys, weights, ts = columns
        for _, _, part_ts in partition_batch(keys, weights, ts, 4):
            assert (np.diff(part_ts) >= 0).all()

    def test_single_shard_passthrough(self, columns):
        keys, weights, ts = columns
        [(k, w, t)] = partition_batch(keys, weights, ts, 1)
        assert k is keys and w is weights and t is ts

    def test_none_ts_stays_none(self, columns):
        keys, weights, _ = columns
        for _, _, part_ts in partition_batch(keys, weights, None, 3):
            assert part_ts is None

    def test_empty_batch(self):
        empty = np.empty(0, dtype=np.uint64)
        parts = partition_batch(empty, np.empty(0, dtype=np.int64), None, 3)
        assert len(parts) == 3
        assert all(len(p[0]) == 0 for p in parts)
