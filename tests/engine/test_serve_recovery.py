"""Worker crash recovery: the supervised serve runtime rebuilds killed
workers' tenants from auto-checkpoints and replays to byte-identical
emissions; the pool's death-detection and respawn mechanics underneath."""

from functools import partial

import pytest

from repro.core import make_detector
from repro.engine import (
    ServeError,
    ServePool,
    WorkerCrashError,
    shard_of_key,
)
from repro.stream import ServeRuntime

from tests.stream.test_serve import (
    CHUNK,
    EMIT,
    PHI,
    SPECS,
    _serial_emissions,
    _strip,
)

FACTORY = partial(make_detector, "countmin-hh")


class TestCrashRecovery:
    def test_killed_worker_recovers_byte_identical(self):
        """Kill one of two workers mid-run: both auto-checkpointed tenants
        are rebuilt and replayed, and every tenant's final emission
        sequence equals an uninterrupted serial run (the acceptance
        criterion for the supervised runtime)."""
        reference = {
            name: _serial_emissions(spec, shards=2)
            for name, spec in SPECS.items()
        }
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            for name, spec in SPECS.items():
                runtime.add_tenant(name, "countmin-hh", spec, emit=EMIT,
                                   phi=PHI, max_packets=9000,
                                   checkpoint_every=1)
            runtime.on_turn = (
                lambda turn: runtime.pool.kill_worker(0) if turn == 5
                else None
            )
            observed = {name: [] for name in SPECS}
            for name, emission in runtime.run():
                observed[name].append(_strip(emission))
            assert not runtime.failed
            assert len(runtime.recoveries) == 1
            record = runtime.recoveries[0]
            assert record["workers"] == (0,)
            assert record["failed"] == ()
            assert record["seconds"] >= 0.0
        for name in SPECS:
            assert observed[name] == reference[name]
            for mine, theirs in zip(observed[name], reference[name]):
                assert list(mine.report.items()) == list(
                    theirs.report.items()
                )

    def test_emissions_delivered_before_crash_are_not_replayed(self):
        """The stitched stream (pre-crash deliveries + post-recovery
        replay) has no duplicates and no gaps: emission indices are
        exactly 0..n-1 in order."""
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("t", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000,
                               checkpoint_every=2)
            runtime.on_turn = (
                lambda turn: runtime.pool.kill_worker(1) if turn == 4
                else None
            )
            indices = [e.index for _, e in runtime.run()]
            assert runtime.recoveries
        assert indices == list(range(len(indices)))
        assert len(indices) > 0

    def test_uncheckpointed_tenant_fails_but_sibling_survives(self):
        """A crash fails only the tenants with no recoverable checkpoint;
        the checkpointed sibling replays to the serial reference and the
        failed one surfaces through ``failed`` / ``pipeline()``."""
        reference = _serial_emissions(SPECS["beta"], shards=2)
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("doomed", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000)
            runtime.add_tenant("safe", "countmin-hh", SPECS["beta"],
                               emit=EMIT, phi=PHI, max_packets=9000,
                               checkpoint_every=1)
            runtime.on_turn = (
                lambda turn: runtime.pool.kill_worker(0) if turn == 6
                else None
            )
            observed = [
                _strip(e) for name, e in runtime.run() if name == "safe"
            ]
            assert "doomed" in runtime.failed
            assert "no recoverable checkpoint" in runtime.failed["doomed"]
            assert "safe" not in runtime.failed
            assert runtime.recoveries[0]["failed"] == ("doomed",)
            with pytest.raises(ServeError, match="failed"):
                runtime.pipeline("doomed")
        assert observed == reference

    def test_no_recover_surfaces_crash_instead_of_hanging(self):
        """With supervision off, a killed worker raises WorkerCrashError
        out of ``run()`` promptly — the slot-reservation accounting must
        not deadlock the producer (the satellite-2 regression)."""
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK,
                          recover=False) as runtime:
            runtime.add_tenant("t", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000,
                               checkpoint_every=1)
            runtime.on_turn = (
                lambda turn: runtime.pool.kill_worker(0) if turn == 2
                else None
            )
            with pytest.raises(WorkerCrashError):
                list(runtime.run())
            assert not runtime.recoveries

    def test_crash_after_tenant_finished_rebuilds_final_state(self):
        """A tenant that already hit EOS before the crash is replayed in
        full (all emissions suppressed) so its queryable state is intact
        for a later checkpoint."""
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("short", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=2000,
                               checkpoint_every=1, emit_partial=False)
            runtime.add_tenant("long", "countmin-hh", SPECS["beta"],
                               emit=EMIT, phi=PHI, max_packets=9000,
                               checkpoint_every=1)
            first = [_strip(e) for _, e in runtime.run()]
            # "short" is done; crash, then drive "long" to completion.
            runtime.add_tenant("tail", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000,
                               checkpoint_every=1)
            # The turn counter is cumulative across run() calls, so count
            # this phase's turns locally.
            phase_turns = []

            def hook(turn):
                phase_turns.append(turn)
                if len(phase_turns) == 3:
                    runtime.pool.kill_worker(1)

            runtime.on_turn = hook
            second = [_strip(e) for name, e in runtime.run()
                      if name == "short"]
            assert not runtime.failed
            assert runtime.recoveries
            # No replayed duplicates from the finished tenant ...
            assert second == []
            # ... and its post-recovery checkpoint still works.
            frozen = runtime.checkpoint_tenant("short")
            assert frozen["offsets"]["packets"] == 2000
        assert first  # sanity: the first phase emitted at all


class TestPoolMechanics:
    def test_kill_is_detected_on_next_command(self):
        with ServePool(2, 2, chunk_capacity=64) as pool:
            pool.open_tenant("t", FACTORY)
            assert pool.dead_workers == ()
            pool.kill_worker(0)
            # A barrier with no in-flight chunks never touches the pipe,
            # so it cannot notice; the next sync command does.
            pool.barrier()
            with pytest.raises(WorkerCrashError) as info:
                pool.query("t", 1.0)
            assert info.value.worker == 0
            assert pool.dead_workers == (0,)
            # Further commands fail fast instead of hanging on the pipe.
            with pytest.raises(WorkerCrashError):
                pool.query("t", 1.0)

    def test_kill_worker_bounds_check(self):
        with ServePool(1, chunk_capacity=64) as pool:
            with pytest.raises(ValueError, match="no such worker"):
                pool.kill_worker(3)

    def test_respawn_reopens_tenants_empty(self):
        """respawn_dead() revives the worker with fresh (empty) detectors
        for every registered tenant; the survivor's shards keep their
        state, so a query sees only the surviving half."""
        key0 = next(k for k in range(64) if shard_of_key(k, 2) == 0)
        key1 = next(k for k in range(64) if shard_of_key(k, 2) == 1)
        with ServePool(2, 2, chunk_capacity=64) as pool:
            det = pool.open_tenant("t", FACTORY)
            det.update(key0, 50.0)   # shard 0 -> worker 0
            det.update(key1, 70.0)   # shard 1 -> worker 1
            pool.barrier()
            pool.kill_worker(0)
            with pytest.raises(WorkerCrashError):
                pool.query("t", 1.0)
            assert pool.respawn_dead() == (0,)
            assert pool.dead_workers == ()
            report = det.query(1.0)
            assert report == {key1: 70.0}
            # The revived worker accepts updates again.
            det.update(key0, 5.0)
            assert det.query(1.0) == {key1: 70.0, key0: 5.0}

    def test_respawn_with_nothing_dead_is_a_no_op(self):
        with ServePool(1, chunk_capacity=64) as pool:
            assert pool.respawn_dead() == ()

    def test_dead_worker_releases_slot_reservations(self):
        """Shipping a long burst into a killed worker must raise, not
        block on slot acquisition (the leak fixed in this PR): pending
        reservations are released when the death is detected."""
        with ServePool(1, 1, chunk_capacity=16, slots=2) as pool:
            det = pool.open_tenant("t", FACTORY)
            pool.kill_worker(0)
            with pytest.raises(WorkerCrashError):
                for start in range(0, 160, 16):
                    det.update_batch(list(range(start, start + 16)))
                pool.barrier()
            # All reservations were returned with the crash.
            assert sum(pool._slot_users) == 0

    def test_tenants_are_ordered_by_registration(self):
        with ServePool(1, chunk_capacity=64) as pool:
            for name in ("gamma", "alpha", "beta"):
                pool.open_tenant(name, FACTORY)
            assert pool.tenants == ("gamma", "alpha", "beta")
            pool.close_tenant("alpha")
            assert pool.tenants == ("gamma", "beta")
            pool.open_tenant("alpha", FACTORY)
            assert pool.tenants == ("gamma", "beta", "alpha")
