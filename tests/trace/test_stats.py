"""Tests for repro.trace.stats."""

import numpy as np
import pytest

from repro.trace.container import Trace
from repro.trace.stats import TraceStats, compute_stats, gini


class TestGini:
    def test_equal_values_zero(self):
        assert gini(np.array([5.0, 5.0, 5.0, 5.0])) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_near_one(self):
        values = np.array([0.0] * 99 + [100.0])
        assert gini(values) > 0.95

    def test_empty_and_zero(self):
        assert gini(np.array([])) == 0.0
        assert gini(np.zeros(5)) == 0.0

    def test_scale_invariant(self):
        v = np.array([1.0, 2.0, 3.0, 10.0])
        assert gini(v) == pytest.approx(gini(v * 100))


class TestComputeStats:
    def test_empty_trace(self):
        stats = compute_stats(Trace.empty())
        assert stats.num_packets == 0
        assert stats.total_bytes == 0

    def test_basic_counts(self, tiny_trace):
        stats = compute_stats(tiny_trace)
        assert stats.num_packets == len(tiny_trace)
        assert stats.total_bytes == tiny_trace.total_bytes
        assert stats.distinct_sources >= 1
        assert stats.mean_rate_pps > 0
        assert 40 <= stats.mean_packet_bytes <= 1500

    def test_shares_ordered(self, tiny_trace):
        stats = compute_stats(tiny_trace)
        assert 0 < stats.top1_source_share <= stats.top10_source_share <= 1.0

    def test_synthetic_trace_is_skewed(self, small_trace):
        stats = compute_stats(small_trace)
        assert stats.gini_coefficient > 0.5

    def test_to_lines(self, tiny_trace):
        lines = compute_stats(tiny_trace).to_lines()
        assert len(lines) == 10
        assert any("packets" in line for line in lines)
