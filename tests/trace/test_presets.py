"""Tests for repro.trace.presets."""

import numpy as np
import pytest

from repro.trace import presets


class TestDays:
    def test_four_days_defined(self):
        for day in range(4):
            config = presets.caida_like_config(day, duration=10.0)
            assert config.duration_s == 10.0

    def test_day_out_of_range(self):
        with pytest.raises(ValueError):
            presets.caida_like_config(4)
        with pytest.raises(ValueError):
            presets.caida_like_config(-1)

    def test_days_differ(self):
        t0 = presets.caida_like_day(0, duration=10.0)
        t1 = presets.caida_like_day(1, duration=10.0)
        assert len(t0) != len(t1) or not np.array_equal(t0.src, t1.src)

    def test_day_deterministic(self):
        a = presets.caida_like_day(2, duration=5.0)
        b = presets.caida_like_day(2, duration=5.0)
        assert np.array_equal(a.ts, b.ts)

    def test_all_days(self):
        traces = presets.all_days(duration=5.0)
        assert len(traces) == 4
        assert all(len(t) > 0 for t in traces)


class TestOtherPresets:
    def test_calm_trace_is_smooth(self):
        calm = presets.calm_trace(duration=20.0)
        bins = np.histogram(calm.ts, bins=np.arange(0, 20.5, 1.0))[0]
        cv = bins.std() / bins.mean()
        assert cv < 0.15  # Poisson-only variability

    def test_sensitivity_trace_has_borderline_band(self):
        t = presets.sensitivity_trace(duration=30.0)
        counts = t.bytes_by_key(0.0, 1e9)
        total = sum(counts.values())
        shares = sorted((v / total for v in counts.values()), reverse=True)
        # Several leaf sources cluster near the 5% threshold.
        near = [s for s in shares if 0.03 < s < 0.08]
        assert len(near) >= 5

    def test_ddos_trace_has_violent_episodes(self):
        t = presets.ddos_trace(duration=30.0)
        assert len(t) > 0

    def test_scaled_config(self):
        base = presets.caida_like_config(0, duration=5.0)
        doubled = presets.scaled_config(base, 2.0)
        assert doubled.rate.base_rate == base.rate.base_rate * 2
        with pytest.raises(ValueError):
            presets.scaled_config(base, 0.0)
