"""Tests for string-addressable trace specifications."""

import pytest

from repro.trace.container import Trace
from repro.trace.spec import (
    TraceSpec,
    TraceSpecError,
    build_trace,
    get_scenario,
    register_scenario,
    scenario_names,
)


class TestParse:
    def test_scenario_only(self):
        spec = TraceSpec.parse("calm")
        assert spec.scenario == "calm"
        assert spec.params == {}

    def test_typed_params(self):
        spec = TraceSpec.parse("caida:day=2,duration=30.5")
        assert spec.params == {"day": 2, "duration": 30.5}
        assert isinstance(spec.params["day"], int)
        assert isinstance(spec.params["duration"], float)

    def test_bool_and_string_values(self):
        spec = TraceSpec.parse("caida:flag=true,name=abc")
        assert spec.params == {"flag": True, "name": "abc"}

    def test_pcap_path_form(self):
        spec = TraceSpec.parse("pcap:/tmp/some=file.pcap")
        assert spec.scenario == "pcap"
        assert spec.params == {"path": "/tmp/some=file.pcap"}

    def test_whitespace_tolerated(self):
        spec = TraceSpec.parse("  zipf: skew=1.2 , duration=5 ")
        assert spec.params == {"skew": 1.2, "duration": 5}

    @pytest.mark.parametrize("text", [
        "", "  ", ":day=0", "caida:day", "caida:=3", "caida:day=",
        "caida:day=0,day=1", "pcap:",
    ])
    def test_malformed_specs_rejected(self, text):
        with pytest.raises(TraceSpecError):
            TraceSpec.parse(text)


class TestFormatRoundTrip:
    @pytest.mark.parametrize("text", [
        "calm",
        "caida:day=0,duration=120",
        "zipf:duration=60.5,skew=1.2",
        "pcap:/data/trace.pcap",
        "flash-crowd:dormant_fraction=0.9",
    ])
    def test_parse_format_parse(self, text):
        spec = TraceSpec.parse(text)
        assert TraceSpec.parse(spec.format()) == spec

    def test_format_is_canonical(self):
        a = TraceSpec.parse("caida:duration=30,day=1")
        b = TraceSpec.parse("caida:day=1,duration=30")
        assert a.format() == b.format() == "caida:day=1,duration=30"

    def test_str_matches_format(self):
        spec = TraceSpec.parse("zipf:skew=1.3")
        assert str(spec) == spec.format()


class TestBuild:
    def test_build_calm(self):
        trace = build_trace("calm:duration=5")
        assert isinstance(trace, Trace)
        assert len(trace) > 0
        assert trace.duration <= 5.0

    def test_build_is_deterministic(self):
        a = build_trace("zipf:skew=1.2,duration=4")
        b = build_trace("zipf:skew=1.2,duration=4")
        assert len(a) == len(b)
        assert a.total_bytes == b.total_bytes

    def test_unknown_scenario(self):
        with pytest.raises(TraceSpecError, match="unknown scenario"):
            build_trace("marsnet:duration=5")

    def test_unknown_parameter(self):
        with pytest.raises(TraceSpecError, match="accepted parameters"):
            build_trace("calm:durationn=5")

    def test_builder_value_error_wrapped(self):
        with pytest.raises(TraceSpecError, match="day must be"):
            build_trace("caida:day=9,duration=5")

    def test_pcap_round_trip(self, tmp_path, tiny_trace):
        from repro.packet.pcap import write_pcap

        path = tmp_path / "t.pcap"
        write_pcap(path, tiny_trace.packets())
        loaded = build_trace(f"pcap:{path}")
        assert len(loaded) == len(tiny_trace)
        assert loaded.total_bytes == tiny_trace.total_bytes


class TestScenarioRegistry:
    def test_core_scenarios_registered(self):
        names = scenario_names()
        for expected in ("caida", "sensitivity", "calm", "zipf", "pcap"):
            assert expected in names

    def test_adversarial_scenarios_registered(self):
        names = scenario_names()
        for expected in ("ddos", "ddos-burst", "flash-crowd", "portscan"):
            assert expected in names

    def test_adversarial_scenarios_build(self):
        for name in ("ddos-burst", "flash-crowd", "portscan"):
            trace = build_trace(f"{name}:duration=5")
            assert len(trace) > 0

    def test_spec_metadata(self):
        spec = get_scenario("caida")
        assert "day" in spec.param_names()
        assert spec.defaults()["day"] == 0
        assert spec.description

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("calm", lambda: None)


class TestAdversarialShapes:
    def test_portscan_aggregate_heavy_leaves_light(self):
        trace = build_trace("portscan:duration=10,scan_share=0.3,scanners=32")
        by_src = trace.bytes_by_key(trace.start_time, trace.end_time + 1e-9)
        total = sum(by_src.values())
        # Group volumes by /24 to find the scanner subnet.
        by_subnet = {}
        for src, volume in by_src.items():
            by_subnet.setdefault(src >> 8, []).append(volume)
        subnet_share = {
            net: sum(v) / total for net, v in by_subnet.items()
        }
        heaviest = max(subnet_share, key=subnet_share.get)
        # The scan /24 carries roughly its designed share...
        assert subnet_share[heaviest] > 0.15
        # ...spread over many members, each individually light.
        members = by_subnet[heaviest]
        assert len(members) >= 24
        assert max(members) / total < 0.05

    def test_flash_crowd_ramps_up(self):
        trace = build_trace("flash-crowd:duration=30")
        quarter = trace.duration / 4
        early = trace.bytes_by_key(
            trace.start_time, trace.start_time + quarter
        )
        late = trace.bytes_by_key(
            trace.end_time - quarter, trace.end_time + 1e-9
        )
        # The stampede activates sources: the active set grows materially
        # from the first to the last quarter of the trace.
        assert len(late) > 1.5 * len(early)
