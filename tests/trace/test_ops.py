"""Tests for repro.trace.ops."""

import numpy as np
import pytest

from repro.trace.container import Trace
from repro.trace.ops import concat_traces, shift_trace, slice_time, thin_trace


class TestShift:
    def test_shift_moves_timestamps(self, tiny_trace):
        moved = shift_trace(tiny_trace, 100.0)
        assert moved.start_time == pytest.approx(tiny_trace.start_time + 100.0)
        assert np.array_equal(moved.src, tiny_trace.src)

    def test_negative_shift(self, tiny_trace):
        moved = shift_trace(tiny_trace, -0.5)
        assert moved.start_time == pytest.approx(tiny_trace.start_time - 0.5)


class TestConcat:
    def test_empty_list(self):
        assert len(concat_traces([])) == 0

    def test_concat_preserves_packets(self, tiny_trace):
        shifted = shift_trace(tiny_trace, tiny_trace.end_time + 1.0)
        merged = concat_traces([tiny_trace, shifted])
        assert len(merged) == 2 * len(tiny_trace)
        assert np.all(np.diff(merged.ts) >= 0)

    def test_interleaved_merge_sorted(self, tiny_trace):
        half = shift_trace(tiny_trace, 0.37)
        merged = concat_traces([tiny_trace, half])
        assert np.all(np.diff(merged.ts) >= 0)
        assert merged.total_bytes == 2 * tiny_trace.total_bytes

    def test_skips_empty(self, tiny_trace):
        merged = concat_traces([Trace.empty(), tiny_trace])
        assert len(merged) == len(tiny_trace)


class TestSlice:
    def test_slice_alias(self, tiny_trace):
        a = slice_time(tiny_trace, 1.0, 2.0)
        b = tiny_trace.slice_time(1.0, 2.0)
        assert np.array_equal(a.ts, b.ts)


class TestThin:
    def test_keep_all(self, tiny_trace):
        assert thin_trace(tiny_trace, 1.0) is tiny_trace

    def test_keep_half_roughly(self, tiny_trace):
        thinned = thin_trace(tiny_trace, 0.5, seed=1)
        assert 0.35 * len(tiny_trace) < len(thinned) < 0.65 * len(tiny_trace)

    def test_deterministic(self, tiny_trace):
        a = thin_trace(tiny_trace, 0.3, seed=2)
        b = thin_trace(tiny_trace, 0.3, seed=2)
        assert np.array_equal(a.ts, b.ts)

    def test_validation(self, tiny_trace):
        with pytest.raises(ValueError):
            thin_trace(tiny_trace, 0.0)
        with pytest.raises(ValueError):
            thin_trace(tiny_trace, 1.5)

    def test_empty_trace(self):
        assert len(thin_trace(Trace.empty(), 0.5)) == 0
