"""Unit tests for repro.trace.container."""

import numpy as np
import pytest

from repro.packet.model import Packet
from repro.trace.container import Trace


def build(ts, srcs, lengths):
    n = len(ts)
    return Trace(
        np.array(ts, dtype=np.float64),
        np.array(srcs, dtype=np.uint32),
        np.zeros(n, dtype=np.uint32),
        np.array(lengths, dtype=np.int64),
    )


class TestConstruction:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            build([2.0, 1.0], [1, 2], [10, 10])

    def test_rejects_mismatched_columns(self):
        with pytest.raises(ValueError):
            Trace(
                np.array([1.0]),
                np.array([1, 2], dtype=np.uint32),
                np.array([1], dtype=np.uint32),
                np.array([1], dtype=np.int64),
            )

    def test_empty(self):
        t = Trace.empty()
        assert len(t) == 0
        assert t.total_bytes == 0
        assert t.duration == 0.0

    def test_from_packets_sorts(self):
        pkts = [
            Packet(ts=2.0, src=2, dst=0, length=20),
            Packet(ts=1.0, src=1, dst=0, length=10),
        ]
        t = Trace.from_packets(pkts)
        assert list(t.ts) == [1.0, 2.0]
        assert list(t.src) == [1, 2]


class TestProperties:
    def test_basic(self):
        t = build([1.0, 2.0, 3.0], [1, 2, 1], [10, 20, 30])
        assert len(t) == 3
        assert t.start_time == 1.0
        assert t.end_time == 3.0
        assert t.duration == 2.0
        assert t.total_bytes == 60


class TestSlicing:
    def test_half_open_semantics(self):
        t = build([1.0, 2.0, 3.0], [1, 2, 3], [10, 10, 10])
        s = t.slice_time(1.0, 3.0)
        assert list(s.src) == [1, 2]

    def test_bytes_in_range(self):
        t = build([0.0, 1.0, 2.0], [1, 1, 1], [5, 7, 9])
        assert t.bytes_in_range(0.5, 2.5) == 16

    def test_bytes_by_key_aggregates(self):
        t = build([0.0, 1.0, 2.0, 3.0], [7, 8, 7, 9], [10, 20, 30, 40])
        counts = t.bytes_by_key(0.0, 4.0)
        assert counts == {7: 40, 8: 20, 9: 40}

    def test_bytes_by_key_dst(self):
        t = Trace(
            np.array([0.0, 1.0]),
            np.array([1, 2], dtype=np.uint32),
            np.array([5, 5], dtype=np.uint32),
            np.array([10, 20], dtype=np.int64),
        )
        assert t.bytes_by_key(0.0, 2.0, key="dst") == {5: 30}

    def test_bytes_by_key_rejects_unknown_column(self):
        t = build([0.0], [1], [10])
        with pytest.raises(ValueError):
            t.bytes_by_key(0.0, 1.0, key="sport")

    def test_slice_preserves_all_columns(self, tiny_trace):
        s = tiny_trace.slice_time(1.0, 2.0)
        assert len(s.sport) == len(s) == len(s.proto)


class TestIteration:
    def test_packet_at_matches_columns(self, tiny_trace):
        pkt = tiny_trace.packet_at(0)
        assert pkt.ts == tiny_trace.ts[0]
        assert pkt.src == int(tiny_trace.src[0])
        assert pkt.length == int(tiny_trace.length[0])

    def test_iteration_in_time_order(self):
        t = build([1.0, 2.0], [1, 2], [10, 20])
        pkts = list(t)
        assert [p.ts for p in pkts] == [1.0, 2.0]

    def test_repr_contains_counts(self):
        t = build([1.0], [1], [10])
        assert "n=1" in repr(t)
