"""Unit tests for repro.trace.zipf."""

import numpy as np
import pytest

from repro.trace.zipf import ZipfSampler


def make(n=100, alpha=1.0, seed=0):
    return ZipfSampler(n, alpha, np.random.default_rng(seed))


class TestConstruction:
    def test_probabilities_normalised(self):
        z = make()
        assert z.probabilities.sum() == pytest.approx(1.0)

    def test_probabilities_decreasing(self):
        z = make(alpha=1.2)
        assert np.all(np.diff(z.probabilities) <= 0)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(ValueError):
            ZipfSampler(10, 0.0, rng)


class TestSampling:
    def test_sample_range(self):
        z = make()
        ranks = z.sample(1000)
        assert ranks.min() >= 0 and ranks.max() < z.n

    def test_sample_zero(self):
        assert len(make().sample(0)) == 0

    def test_sample_negative_rejected(self):
        with pytest.raises(ValueError):
            make().sample(-1)

    def test_empirical_matches_theoretical_head(self):
        z = make(n=50, alpha=1.0, seed=1)
        ranks = z.sample(200_000)
        freq0 = np.mean(ranks == 0)
        assert freq0 == pytest.approx(z.probabilities[0], rel=0.05)

    def test_head_share(self):
        z = make(n=10, alpha=1.0)
        assert z.head_share(10) == pytest.approx(1.0)
        assert 0 < z.head_share(1) < 1
        assert z.head_share(100) == pytest.approx(1.0)  # capped at n


class TestWeightedSampling:
    def test_zero_weight_excludes(self):
        z = make(n=10)
        weights = np.ones(10)
        weights[3] = 0.0
        ranks = z.sample_weighted(5000, weights)
        assert 3 not in set(ranks.tolist())

    def test_boost_increases_frequency(self):
        z = make(n=100, alpha=1.0, seed=2)
        weights = np.ones(100)
        weights[50] = 200.0
        ranks = z.sample_weighted(50_000, weights)
        boosted = np.mean(ranks == 50)
        assert boosted > z.probabilities[50] * 10

    def test_weights_length_validated(self):
        with pytest.raises(ValueError):
            make(n=10).sample_weighted(5, np.ones(9))

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            make(n=10).sample_weighted(5, np.zeros(10))


class TestReweightHead:
    def test_head_shares_pinned(self):
        z = make(n=1000, alpha=1.0, seed=3)
        z.reweight_head([0.10, 0.08])
        assert z.probabilities[0] == pytest.approx(0.10)
        assert z.probabilities[1] == pytest.approx(0.08)
        assert z.probabilities.sum() == pytest.approx(1.0)

    def test_tail_keeps_relative_order(self):
        z = make(n=100, alpha=1.0, seed=4)
        before = z.probabilities.copy()
        z.reweight_head([0.2])
        ratio = z.probabilities[5] / z.probabilities[50]
        assert ratio == pytest.approx(before[5] / before[50])

    def test_validation(self):
        z = make(n=10)
        with pytest.raises(ValueError):
            z.reweight_head([0.1] * 10)  # as large as population
        with pytest.raises(ValueError):
            z.reweight_head([1.5])


class TestFromProbabilities:
    def test_explicit_vector(self):
        rng = np.random.default_rng(5)
        z = ZipfSampler.from_probabilities(np.array([0.5, 0.25, 0.25]), rng)
        ranks = z.sample(10_000)
        assert np.mean(ranks == 0) == pytest.approx(0.5, abs=0.02)

    def test_normalises(self):
        rng = np.random.default_rng(6)
        z = ZipfSampler.from_probabilities(np.array([2.0, 2.0]), rng)
        assert z.probabilities.tolist() == [0.5, 0.5]

    def test_rejects_bad_vectors(self):
        rng = np.random.default_rng(7)
        with pytest.raises(ValueError):
            ZipfSampler.from_probabilities(np.array([]), rng)
        with pytest.raises(ValueError):
            ZipfSampler.from_probabilities(np.array([0.0, 0.0]), rng)
        with pytest.raises(ValueError):
            ZipfSampler.from_probabilities(np.array([-1.0, 2.0]), rng)
