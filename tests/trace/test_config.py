"""Validation tests for repro.trace.config."""

import pytest

from repro.trace.config import (
    BurstConfig,
    ChurnConfig,
    HeavyEpisodeConfig,
    RateConfig,
    SyntheticTraceConfig,
)


class TestRateConfig:
    def test_defaults_valid(self):
        RateConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"base_rate": 0},
            {"base_rate": -1},
            {"busy_factor": 0.5},
            {"mean_calm_s": 0},
            {"mean_busy_s": -1},
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            RateConfig(**kw)


class TestChurnConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"epoch_s": 0},
            {"deactivate_prob": 1.5},
            {"activate_prob": -0.1},
            {"initially_active_fraction": 2.0},
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            ChurnConfig(**kw)


class TestBurstConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"bursts_per_epoch": -1},
            {"burst_packets": -1},
            {"burst_span_s": 0},
            {"burst_size_bytes": 0},
            {"train_packets": -1},
            {"train_span_s": 0},
            {"gap_s": -0.1},
            {"slot_sigma": -1.0},
            {"slot_s": 0},
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            BurstConfig(**kw)


class TestHeavyEpisodeConfig:
    @pytest.mark.parametrize(
        "kw",
        [
            {"episodes_per_minute": -1},
            {"min_share": 0.0},
            {"min_share": 0.2, "max_share": 0.1},
            {"max_share": 1.0},
            {"min_duration_s": 0},
            {"min_duration_s": 5.0, "max_duration_s": 1.0},
            {"subnet_fraction": 1.5},
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            HeavyEpisodeConfig(**kw)


class TestSyntheticTraceConfig:
    def test_defaults_valid(self):
        SyntheticTraceConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"duration_s": 0},
            {"num_sources": 0},
            {"zipf_alpha": 0},
            {"mean_packet_bytes": 30},
            {"mean_packet_bytes": 2000},
            {"band_subnet_hosts": 0},
            {"head_shares": (0.5, 0.5)},  # pins 1.0
            {"head_shares": (-0.1,)},
            {"head_shares": (0.5,), "band_subnets": (0.5,)},
        ],
    )
    def test_rejects(self, kw):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(**kw)

    def test_frozen(self):
        config = SyntheticTraceConfig()
        with pytest.raises(AttributeError):
            config.seed = 5  # type: ignore[misc]
