"""The trace cache and the improved unknown-scenario diagnostics."""

import pytest

from repro.trace import TraceSpec, TraceSpecError, clear_trace_cache
from repro.trace.spec import cache_info, trace_cache_keys

# Cache isolation comes from the top-level conftest's autouse
# ``_fresh_trace_cache`` fixture; no ad-hoc clears here.


class TestTraceCache:
    def test_repeated_builds_reuse_the_trace(self):
        spec = TraceSpec.parse("zipf:duration=2,sources=100")
        assert spec.build() is spec.build()

    def test_cache_keys_are_canonical_spec_strings(self):
        TraceSpec.parse("zipf:sources=100,duration=2").build()
        assert trace_cache_keys() == ("zipf:duration=2,sources=100",)
        # A differently-ordered but identical spec hits the same entry.
        TraceSpec.parse("zipf:duration=2,sources=100").build()
        assert len(trace_cache_keys()) == 1

    def test_different_params_build_different_traces(self):
        a = TraceSpec.parse("zipf:duration=2,sources=100").build()
        b = TraceSpec.parse("zipf:duration=2,sources=200").build()
        assert a is not b
        assert len(trace_cache_keys()) == 2

    def test_cache_false_forces_rebuild(self):
        spec = TraceSpec.parse("zipf:duration=2,sources=100")
        cached = spec.build()
        rebuilt = spec.build(cache=False)
        assert cached is not rebuilt
        assert len(cached) == len(rebuilt)
        assert (cached.ts == rebuilt.ts).all()

    def test_uncached_build_does_not_populate(self):
        TraceSpec.parse("zipf:duration=2,sources=100").build(cache=False)
        assert trace_cache_keys() == ()

    def test_pcap_is_never_cached(self, tmp_path):
        from repro.packet.pcap import write_pcap

        path = tmp_path / "t.pcap"
        trace = TraceSpec.parse("zipf:duration=2,sources=100").build()
        write_pcap(str(path), trace.packets())
        spec = TraceSpec.parse(f"pcap:{path}")
        first = spec.build()
        assert first is not spec.build()
        assert all(not key.startswith("pcap") for key in trace_cache_keys())

    def test_cached_traces_are_frozen(self):
        """Cache hits share one object, so in-place edits must fail loudly
        instead of corrupting every later build of the same spec."""
        import pytest as _pytest

        trace = TraceSpec.parse("zipf:duration=2,sources=100").build()
        with _pytest.raises(ValueError):
            trace.ts += 1.0
        with _pytest.raises(ValueError):
            trace.length[0] = 0

    def test_uncached_build_stays_writable(self):
        trace = TraceSpec.parse("zipf:duration=2,sources=100").build(
            cache=False
        )
        trace.ts += 0.0  # no error: private copy

    def test_clear_trace_cache(self):
        TraceSpec.parse("zipf:duration=2,sources=100").build()
        clear_trace_cache()
        assert trace_cache_keys() == ()

    def test_cache_is_bounded(self):
        for sources in range(100, 100 + 12):
            TraceSpec.parse(f"zipf:duration=1,sources={sources}").build()
        assert len(trace_cache_keys()) == 8  # LRU bound

    def test_evicts_least_recently_used(self):
        specs = [
            TraceSpec.parse(f"zipf:duration=1,sources={sources}")
            for sources in range(100, 109)  # one more than the bound
        ]
        for spec in specs:
            spec.build()
        assert specs[0].format() not in trace_cache_keys()
        assert specs[-1].format() in trace_cache_keys()


class TestCacheInfo:
    def test_counts_hits_and_misses(self):
        spec = TraceSpec.parse("zipf:duration=2,sources=100")
        assert cache_info() == (0, 0, 0, 8)
        spec.build()
        assert cache_info().misses == 1
        assert cache_info().hits == 0
        spec.build()
        spec.build()
        assert cache_info().hits == 2
        assert cache_info().misses == 1
        assert cache_info().size == 1

    def test_uncached_builds_count_as_neither(self):
        spec = TraceSpec.parse("zipf:duration=2,sources=100")
        spec.build(cache=False)
        assert cache_info().hits == 0
        assert cache_info().misses == 0

    def test_clear_resets_counters(self):
        spec = TraceSpec.parse("zipf:duration=2,sources=100")
        spec.build()
        spec.build()
        clear_trace_cache()
        assert cache_info() == (0, 0, 0, 8)

    def test_trace_stats_surfaces_the_counters(self):
        from repro.experiments import run_experiment

        spec = "zipf:duration=2,sources=100"
        run_experiment("trace-stats", trace_specs=[spec])
        result = run_experiment("trace-stats", trace_specs=[spec])
        assert result.headline["trace_cache_hits"] >= 1
        assert result.headline["trace_cache_misses"] >= 1
        assert result.extras["trace_cache"].hits >= 1


class TestUnknownScenarioDiagnostics:
    def test_lists_registered_scenarios(self):
        with pytest.raises(TraceSpecError) as excinfo:
            TraceSpec.parse("nonsense:duration=5").build()
        message = str(excinfo.value)
        assert "registered scenarios" in message
        assert "caida" in message and "zipf" in message

    def test_suggests_closest_match(self):
        with pytest.raises(TraceSpecError, match="did you mean 'zipf'"):
            TraceSpec.parse("zpif:duration=5").build()

    def test_no_suggestion_when_nothing_is_close(self):
        with pytest.raises(TraceSpecError) as excinfo:
            TraceSpec.parse("qqqqqqq").build()
        assert "did you mean" not in str(excinfo.value)
