"""Unit tests for repro.trace.generator."""

import numpy as np
import pytest

from repro.trace.config import (
    BurstConfig,
    ChurnConfig,
    HeavyEpisodeConfig,
    RateConfig,
    SyntheticTraceConfig,
)
from repro.trace.generator import (
    HeavyEpisode,
    SyntheticTraceGenerator,
    generate_trace,
)


class TestDeterminism:
    def test_same_seed_same_trace(self, tiny_config):
        a = generate_trace(tiny_config)
        b = generate_trace(tiny_config)
        assert np.array_equal(a.ts, b.ts)
        assert np.array_equal(a.src, b.src)
        assert np.array_equal(a.length, b.length)

    def test_different_seed_differs(self, tiny_config):
        from dataclasses import replace

        other = replace(tiny_config, seed=tiny_config.seed + 1)
        a, b = generate_trace(tiny_config), generate_trace(other)
        assert len(a) != len(b) or not np.array_equal(a.src, b.src)


class TestStructure:
    def test_timestamps_sorted_and_bounded(self, tiny_config, tiny_trace):
        assert np.all(np.diff(tiny_trace.ts) >= 0)
        assert tiny_trace.ts[0] >= 0
        assert tiny_trace.ts[-1] <= tiny_config.duration_s

    def test_rate_matches_config(self, tiny_config, tiny_trace):
        pps = len(tiny_trace) / tiny_config.duration_s
        base = tiny_config.rate.base_rate
        # Between calm and busy rates, with burst additions on top.
        assert base * 0.5 < pps < base * tiny_config.rate.busy_factor * 2.5

    def test_sources_from_population(self, tiny_config, tiny_trace):
        gen = SyntheticTraceGenerator(tiny_config)
        assert set(np.unique(tiny_trace.src)) <= set(int(s) for s in gen.sources)

    def test_packet_sizes_bimodal_plus_bursts(self, tiny_trace):
        sizes = set(np.unique(tiny_trace.length).tolist())
        assert sizes <= {40, 1400, 1500}

    def test_heavy_tail_present(self, small_trace):
        counts = small_trace.bytes_by_key(0.0, 1e9)
        volumes = sorted(counts.values(), reverse=True)
        total = sum(volumes)
        assert volumes[0] / total > 0.01  # a head exists
        assert len(volumes) > 100  # and a long tail


class TestEpisodes:
    def test_schedule_recorded(self, tiny_config):
        gen = SyntheticTraceGenerator(tiny_config)
        gen.generate()
        assert all(isinstance(ep, HeavyEpisode) for ep in gen.episodes)
        for ep in gen.episodes:
            assert 0 <= ep.start <= tiny_config.duration_s
            assert ep.duration > 0
            assert ep.boost >= 1.0

    def test_overlap_helper(self):
        ep = HeavyEpisode(10.0, 5.0, 0.05, 2.0, (0,), False)
        assert ep.end == 15.0
        assert ep.overlap(0.0, 10.0) == 0.0
        assert ep.overlap(12.0, 13.0) == pytest.approx(1.0)
        assert ep.overlap(14.0, 20.0) == pytest.approx(1.0)

    def test_episode_raises_target_share(self):
        config = SyntheticTraceConfig(
            duration_s=30.0,
            num_sources=500,
            seed=42,
            rate=RateConfig(base_rate=500.0, busy_factor=1.0),
            churn=ChurnConfig(deactivate_prob=0.0, activate_prob=0.0),
            bursts=BurstConfig(bursts_per_epoch=0.0, burst_packets=0),
            episodes=HeavyEpisodeConfig(
                episodes_per_minute=4.0, min_share=0.2, max_share=0.3,
                min_duration_s=8.0, max_duration_s=12.0, subnet_fraction=0.0,
            ),
        )
        gen = SyntheticTraceGenerator(config)
        trace = gen.generate()
        hits = 0
        for ep in gen.episodes:
            mid0, mid1 = ep.start + 0.25 * ep.duration, ep.start + 0.75 * ep.duration
            if mid1 > config.duration_s:
                continue
            total = trace.bytes_in_range(mid0, mid1)
            target = int(gen.sources[ep.source_ranks[0]])
            got = trace.bytes_by_key(mid0, mid1).get(target, 0)
            if total and got / total > 0.1:
                hits += 1
        assert hits >= max(1, len(gen.episodes) // 2)

    def test_subnet_episodes_share_a_slash24(self, tiny_config):
        gen = SyntheticTraceGenerator(tiny_config)
        gen.generate()
        for ep in gen.episodes:
            if ep.is_subnet:
                subnets = {int(gen.sources[r]) >> 8 for r in ep.source_ranks}
                assert len(subnets) == 1


class TestBandsAndHeads:
    def test_head_shares_realised(self):
        config = SyntheticTraceConfig(
            duration_s=30.0, num_sources=500, seed=11,
            head_shares=(0.2, 0.1),
            rate=RateConfig(base_rate=800.0, busy_factor=1.0),
            churn=ChurnConfig(
                deactivate_prob=0.0, activate_prob=0.0,
                initially_active_fraction=1.0,
            ),
            bursts=BurstConfig(bursts_per_epoch=0.0, burst_packets=0),
            episodes=HeavyEpisodeConfig(episodes_per_minute=0.0),
        )
        gen = SyntheticTraceGenerator(config)
        trace = gen.generate()
        counts = trace.bytes_by_key(0.0, 1e9)
        total = sum(counts.values())
        share0 = counts.get(int(gen.sources[0]), 0) / total
        assert share0 == pytest.approx(0.2, rel=0.25)

    def test_band_subnets_extend_population(self):
        config = SyntheticTraceConfig(
            duration_s=5.0, num_sources=100, seed=12,
            band_subnets=(0.1, 0.1), band_subnet_hosts=8,
        )
        gen = SyntheticTraceGenerator(config)
        assert gen.population == 100 + 16
        assert gen.churn_exempt[100:].all()
        # Band hosts share a /24 per band.
        band1 = {int(s) >> 8 for s in gen.sources[100:108]}
        band2 = {int(s) >> 8 for s in gen.sources[108:116]}
        assert len(band1) == 1 and len(band2) == 1 and band1 != band2

    def test_band_share_realised(self):
        config = SyntheticTraceConfig(
            duration_s=30.0, num_sources=300, seed=13,
            band_subnets=(0.25,), band_subnet_hosts=8,
            rate=RateConfig(base_rate=800.0, busy_factor=1.0),
            churn=ChurnConfig(
                deactivate_prob=0.0, activate_prob=0.0,
                initially_active_fraction=1.0,
            ),
            bursts=BurstConfig(bursts_per_epoch=0.0, burst_packets=0),
            episodes=HeavyEpisodeConfig(episodes_per_minute=0.0),
        )
        gen = SyntheticTraceGenerator(config)
        trace = gen.generate()
        counts = trace.bytes_by_key(0.0, 1e9)
        total = sum(counts.values())
        band_hosts = {int(s) for s in gen.sources[300:]}
        band_bytes = sum(v for k, v in counts.items() if k in band_hosts)
        assert band_bytes / total == pytest.approx(0.25, rel=0.2)


class TestTimestampModels:
    def _config(self, **bursts):
        return SyntheticTraceConfig(
            duration_s=10.0, num_sources=50, seed=21,
            rate=RateConfig(base_rate=500.0, busy_factor=1.0),
            churn=ChurnConfig(deactivate_prob=0.0, activate_prob=0.0),
            episodes=HeavyEpisodeConfig(episodes_per_minute=0.0),
            bursts=BurstConfig(bursts_per_epoch=0.0, burst_packets=0, **bursts),
        )

    def _burstiness(self, trace, bin_s=0.1):
        """CV of per-bin packet counts for the heaviest source."""
        counts = trace.bytes_by_key(0.0, 1e9)
        top = max(counts, key=counts.get)
        ts = trace.ts[trace.src == top]
        bins = np.histogram(ts, bins=np.arange(0, 10.01, bin_s))[0]
        return bins.std() / max(bins.mean(), 1e-9)

    def test_trains_increase_small_scale_burstiness(self):
        smooth = generate_trace(self._config())
        trained = generate_trace(self._config(train_packets=20, train_span_s=0.05))
        assert self._burstiness(trained) > self._burstiness(smooth) * 1.5

    def test_slots_increase_small_scale_burstiness(self):
        smooth = generate_trace(self._config())
        slotted = generate_trace(self._config(slot_sigma=1.5))
        assert self._burstiness(slotted) > self._burstiness(smooth) * 1.5

    def test_gaps_create_silences(self):
        gapped = generate_trace(self._config(gap_s=0.3))
        assert len(gapped) > 0
        # All models keep timestamps inside the trace duration.
        assert gapped.ts.min() >= 0 and gapped.ts.max() <= 10.0
