"""CLI sweep subcommand: happy path, failure paths, artifact round-trip."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.sweep import SweepResult, validate_sweep_dict

GRID = (
    "exp=detector-accuracy,trace-stats;"
    "trace=zipf:duration=3,calm:duration=3;"
    "detector=countmin-hh,spacesaving;phi=0.02"
)


class TestSweepCommand:
    def test_serial_happy_path(self, capsys):
        assert main(["sweep", "--grid", GRID]) == 0
        out = capsys.readouterr().out
        assert "6 cells" in out
        assert "serial backend" in out
        assert "countmin-hh" in out and "trace-stats" in out
        assert "6 ok, 0 failed" in out

    def test_workers_imply_process_backend(self, capsys):
        assert main([
            "sweep", "--grid",
            "exp=detector-accuracy;trace=zipf:duration=3;"
            "detector=countmin-hh,spacesaving;phi=0.02",
            "--workers", "2",
        ]) == 0
        assert "process backend, 2 workers" in capsys.readouterr().out

    def test_serial_backend_with_workers_rejected(self, capsys):
        assert main([
            "sweep", "--grid", "exp=detector-accuracy",
            "--backend", "serial", "--workers", "4",
        ]) == 2
        assert "process backend" in capsys.readouterr().err

    def test_backend_process_without_workers_uses_cpu_count(self, capsys):
        import os

        assert main([
            "sweep", "--grid",
            "exp=detector-accuracy;trace=zipf:duration=2;"
            "detector=countmin-hh;phi=0.02",
            "--backend", "process",
        ]) == 0
        expected = os.cpu_count() or 1
        assert f"process backend, {expected} worker" in capsys.readouterr().out

    def test_group_by_pivot(self, capsys):
        assert main([
            "sweep", "--grid", GRID, "--group-by", "experiment,detector",
        ]) == 0
        out = capsys.readouterr().out
        assert "cells" in out  # the pivot's count column

    def test_best_metric(self, capsys):
        assert main(["sweep", "--grid", GRID, "--best", "recall"]) == 0
        assert "best cell by recall" in capsys.readouterr().out

    def test_failed_cells_exit_nonzero(self, capsys):
        assert main([
            "sweep", "--grid",
            "exp=detector-accuracy;trace=zipf:duration=2;phi=2",
        ]) == 1
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "failed:" in captured.err

    def test_best_on_all_failed_cells_keeps_diagnostics_and_exit_1(
        self, capsys
    ):
        # --best must not mask runtime cell failures: the table, the
        # summary, and the per-cell errors still print, and the exit code
        # stays 1 (cells failed), not 2 (bad names).
        assert main([
            "sweep", "--grid",
            "exp=detector-accuracy;trace=zpif:duration=2",
            "--best", "f1",
        ]) == 1
        captured = capsys.readouterr()
        assert "1 failed" in captured.out
        assert "did you mean 'zipf'" in captured.err

    def test_best_unknown_metric_on_ok_sweep_exits_2(self, capsys):
        assert main([
            "sweep", "--grid",
            "exp=detector-accuracy;trace=zipf:duration=2;phi=0.02",
            "--best", "recal",
        ]) == 2
        captured = capsys.readouterr()
        assert "did you mean 'recall'" in captured.err
        assert "1 ok" in captured.out  # table + summary still printed


class TestSweepFailurePaths:
    """Unknown names exit 2 with a closest-match suggestion."""

    def test_unknown_experiment_suggests(self, capsys):
        assert main(["sweep", "--grid", "exp=hiden-hhh"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "did you mean 'hidden-hhh'" in err

    def test_unknown_axis_suggests(self, capsys):
        assert main([
            "sweep", "--grid", "exp=detector-accuracy;detectr=countmin-hh",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown sweep axis" in err
        assert "did you mean 'detector'" in err

    def test_unknown_detector_suggests(self, capsys):
        assert main([
            "sweep", "--grid", "exp=detector-accuracy;detector=countmin-hhh",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown detector" in err
        assert "did you mean 'countmin-hh'" in err

    def test_malformed_grid_clean_error(self, capsys):
        assert main(["sweep", "--grid", "exp=a;;b"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_scenario_in_trace_axis(self, capsys):
        assert main([
            "sweep", "--grid", "exp=trace-stats;trace=zpif:duration=2",
        ]) == 1  # recorded per cell, surfaced on stderr
        assert "did you mean 'zipf'" in capsys.readouterr().err

    def test_unknown_group_by_suggests(self, capsys):
        assert main([
            "sweep", "--grid",
            "exp=detector-accuracy;trace=zipf:duration=2;"
            "detector=countmin-hh;phi=0.02",
            "--group-by", "detectr",
        ]) == 2
        assert "did you mean 'detector'" in capsys.readouterr().err

    def test_group_by_typo_does_not_discard_the_run(self, tmp_path, capsys):
        # The sweep completed; a --group-by typo must still print the flat
        # table and write the artifact (exit 2 flags the typo).
        out_file = tmp_path / "sweep.json"
        assert main([
            "sweep", "--grid",
            "exp=detector-accuracy;trace=zipf:duration=2;"
            "detector=countmin-hh;phi=0.02",
            "--group-by", "detectr", "--json", str(out_file),
        ]) == 2
        captured = capsys.readouterr()
        assert "1 ok" in captured.out  # flat table + summary still shown
        assert out_file.exists()
        validate_sweep_dict(json.loads(out_file.read_text()))

    def test_run_unknown_detector_also_suggests(self, capsys):
        # The suggestion lives in the core registry, so plain `run` paths
        # (and stream) inherit it too.
        assert main([
            "run", "detector-accuracy", "--trace", "zipf:duration=2",
            "--set", "detector=countmin-hhh",
        ]) == 2
        assert "did you mean 'countmin-hh'" in capsys.readouterr().err


class TestSweepArtifact:
    def test_json_round_trips_byte_identically(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        assert main([
            "sweep", "--grid", GRID, "--json", str(out_file),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        text = out_file.read_text()
        document = json.loads(text)
        validate_sweep_dict(document)
        assert document["grid"] == GRID
        # from_json -> to_json reproduces the file byte for byte
        # (to_json(path) appends one trailing newline).
        assert SweepResult.from_json(Path(out_file)).to_json() + "\n" == text

    def test_cell_rows_byte_match_standalone_run_json(self, tmp_path):
        sweep_file = tmp_path / "sweep.json"
        assert main(["sweep", "--grid", GRID, "--json", str(sweep_file)]) == 0
        document = json.loads(sweep_file.read_text())
        for cell in document["cells"]:
            run_file = tmp_path / f"cell{cell['index']}.json"
            argv = [
                "run", cell["experiment"], "--trace", cell["trace"],
                "--json", str(run_file),
            ]
            for key, value in cell["params"].items():
                argv += ["--set", f"{key}={value}"]
            assert main(argv) == 0
            standalone = json.loads(run_file.read_text())
            assert cell["result"]["rows"] == standalone["rows"]
            # trace-stats surfaces the process-global cache counters in its
            # headline; those legitimately depend on what ran before, so
            # they are excluded from the equality check.
            drop = ("trace_cache_hits", "trace_cache_misses")
            assert {
                k: v for k, v in cell["result"]["headline"].items()
                if k not in drop
            } == {
                k: v for k, v in standalone["headline"].items()
                if k not in drop
            }
            assert cell["result"]["traces"] == standalone["traces"]

    def test_meta_experiment_smoke_emits_valid_result(self, tmp_path):
        out_file = tmp_path / "meta.json"
        assert main([
            "run", "sweep", "--smoke", "--json", str(out_file),
        ]) == 0
        from repro.experiments import validate_result_dict

        document = json.loads(out_file.read_text())
        validate_result_dict(document)
        assert document["experiment"] == "sweep"
        assert document["headline"]["num_errors"] == 0
