"""The ``repro-hhh fuzz`` subcommand: budgeted runs, exit codes, case
artifacts, replay, and the JSON summary."""

import json

import pytest

from repro.cli import main
from repro.experiments import validate_result_dict
from repro.fuzz import read_case


def _run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


@pytest.fixture
def broken_toy():
    from repro.core.detector import Detector, as_batch
    from repro.core.registry import _REGISTRY, register_detector

    class BrokenCounter(Detector):
        """Batch path drops the last packet of any batch of >= 40."""

        def __init__(self):
            self.counts = {}

        def update(self, key, weight=1, ts=None):
            self.counts[key] = self.counts.get(key, 0) + weight

        def update_batch(self, keys, weights=None, ts=None):
            keys, weights, _ = as_batch(keys, weights, ts)
            if len(keys) >= 40:
                keys, weights = keys[:-1], weights[:-1]
            for key, weight in zip(keys.tolist(), weights.tolist()):
                self.update(key, weight)

        def query(self, threshold, now=None):
            return {
                key: float(count)
                for key, count in sorted(self.counts.items())
                if count >= threshold
            }

        def reset(self):
            self.counts = {}

        @property
        def num_counters(self):
            return len(self.counts)

    register_detector(
        "broken-toy", BrokenCounter,
        description="test-only: batch path drops packets",
    )
    try:
        yield "broken-toy"
    finally:
        _REGISTRY.pop("broken-toy", None)


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, capsys):
        code, out = _run(
            capsys, "fuzz", "--pairs", "10", "--budget-s", "60", "--seed", "0",
        )
        assert code == 0
        assert "10 pairs" in out
        assert "0 divergences" in out

    def test_axis_and_detector_restriction(self, capsys):
        code, out = _run(
            capsys, "fuzz", "--pairs", "4", "--budget-s", "60",
            "--axis", "chunking", "--detector", "spacesaving",
        )
        assert code == 0
        assert "chunking" in out
        assert "sharding" not in out

    def test_verbose_prints_every_pair(self, capsys):
        code, out = _run(
            capsys, "fuzz", "--pairs", "3", "--budget-s", "60", "--verbose",
        )
        assert code == 0
        assert out.count("  ok") == 3

    def test_json_summary_validates(self, capsys, tmp_path):
        path = tmp_path / "fuzz.json"
        code, _ = _run(
            capsys, "fuzz", "--pairs", "5", "--budget-s", "60",
            "--json", str(path),
        )
        assert code == 0
        document = json.loads(path.read_text())
        validate_result_dict(document)
        assert document["experiment"] == "fuzz"
        assert document["headline"]["pairs"] == 5
        assert document["rows"]

    def test_unknown_detector_fails_cleanly(self, capsys):
        code = main(["fuzz", "--pairs", "1", "--detector", "nope"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err and "unknown detector" in err

    def test_divergence_exits_one_and_writes_cases(
        self, capsys, tmp_path, broken_toy
    ):
        cases_dir = tmp_path / "cases"
        code, out = _run(
            capsys, "fuzz", "--pairs", "4", "--budget-s", "120",
            "--detector", "broken-toy", "--axis", "chunking",
            "--cases-dir", str(cases_dir),
        )
        assert code == 1
        assert "DIVERGED" in out
        written = sorted(cases_dir.glob("fuzz-case-*.json"))
        assert written
        case = read_case(written[0])
        assert case.axis == "chunking"
        assert case.plan_a.detector == "broken-toy"

    def test_replay_reproduces(self, capsys, tmp_path, broken_toy):
        cases_dir = tmp_path / "cases"
        code, _ = _run(
            capsys, "fuzz", "--pairs", "4", "--budget-s", "120",
            "--detector", "broken-toy", "--axis", "chunking",
            "--cases-dir", str(cases_dir),
        )
        assert code == 1
        artifact = sorted(cases_dir.glob("fuzz-case-*.json"))[0]

        code, out = _run(capsys, "fuzz", "--replay", str(artifact))
        assert code == 0
        assert "reproduced:" in out

    def test_replay_missing_file_fails(self, capsys):
        code = main(["fuzz", "--replay", "/nonexistent/case.json"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_replay_stale_case_exits_one(self, capsys, tmp_path):
        # A hand-built "divergence" on a healthy detector: replay must
        # report that it no longer reproduces.
        from repro.fuzz import (
            Divergence,
            ExecutionPlan,
            FuzzCase,
            write_case,
        )

        base = ExecutionPlan(
            detector="spacesaving", stream="zipf:duration=4,seed=1",
            take=128, emit="2s",
        )
        case = FuzzCase(
            axis="chunking", seed=0, pair_index=0,
            divergence=Divergence("chunking", "report", "stale"),
            plan_a=base.with_(chunk=16), plan_b=base.with_(chunk=48),
            original_a=base.with_(chunk=16), original_b=base.with_(chunk=48),
        )
        path = write_case(case, tmp_path / "stale.json")

        code, out = _run(capsys, "fuzz", "--replay", str(path))
        assert code == 1
        assert "no longer reproduces" in out
