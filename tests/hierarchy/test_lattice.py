"""Tests for repro.hierarchy.lattice."""

import pytest

from repro.hierarchy.lattice import LatticeNode, TwoDHierarchy


class TestConstruction:
    def test_default_geometry(self):
        lattice = TwoDHierarchy()
        assert lattice.num_nodes == 25

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            TwoDHierarchy(src_lengths=(24, 16, 0))


class TestOrdering:
    def test_bottom_up_starts_specific_ends_root(self):
        lattice = TwoDHierarchy()
        nodes = list(lattice.nodes_bottom_up())
        assert nodes[0] == LatticeNode(0, 0)
        assert lattice.is_root(nodes[-1])

    def test_bottom_up_children_before_parents(self):
        lattice = TwoDHierarchy()
        seen: set[LatticeNode] = set()
        for node in lattice.nodes_bottom_up():
            for parent in lattice.parents(node):
                assert parent not in seen
            seen.add(node)

    def test_covers_all_nodes(self):
        lattice = TwoDHierarchy()
        assert len(list(lattice.nodes_bottom_up())) == lattice.num_nodes


class TestGeneralize:
    def test_leaf_identity(self):
        lattice = TwoDHierarchy()
        key = (0x0A0B0C0D << 32) | 0x01020304
        assert lattice.generalize(key, LatticeNode(0, 0)) == key

    def test_masks_each_dimension(self):
        lattice = TwoDHierarchy()
        key = (0x0A0B0C0D << 32) | 0x01020304
        g = lattice.generalize(key, LatticeNode(1, 2))
        assert g >> 32 == 0x0A0B0C00
        assert g & 0xFFFFFFFF == 0x01020000

    def test_root_zeroes_everything(self):
        lattice = TwoDHierarchy()
        key = (0xFFFFFFFF << 32) | 0xFFFFFFFF
        assert lattice.generalize(key, LatticeNode(4, 4)) == 0


class TestParents:
    def test_interior_node_has_two_parents(self):
        lattice = TwoDHierarchy()
        assert len(lattice.parents(LatticeNode(1, 1))) == 2

    def test_root_has_no_parents(self):
        lattice = TwoDHierarchy()
        assert lattice.parents(LatticeNode(4, 4)) == []

    def test_edge_node_has_one_parent(self):
        lattice = TwoDHierarchy()
        assert len(lattice.parents(LatticeNode(4, 0))) == 1


class TestPrefixesOf:
    def test_extracts_both_dimensions(self):
        lattice = TwoDHierarchy()
        key = (0x0A000000 << 32) | 0x0B000000
        src, dst = lattice.prefixes_of(key, LatticeNode(3, 3))
        assert str(src) == "10.0.0.0/8"
        assert str(dst) == "11.0.0.0/8"
