"""Tests for repro.hierarchy.domain."""

import pytest
from hypothesis import given, strategies as st

from repro.hierarchy.domain import BIT_LENGTHS, BYTE_LENGTHS, SourceHierarchy

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestConstruction:
    def test_byte_default(self):
        h = SourceHierarchy()
        assert h.lengths == BYTE_LENGTHS == (32, 24, 16, 8, 0)
        assert h.num_levels == 5

    def test_bit(self):
        h = SourceHierarchy("bit")
        assert h.lengths == BIT_LENGTHS
        assert h.num_levels == 33

    def test_custom(self):
        h = SourceHierarchy((32, 16, 0))
        assert h.num_levels == 3

    @pytest.mark.parametrize(
        "lengths", [(), (24, 16, 0), (32, 16), (32, 16, 16, 0), (32, 8, 16, 0)]
    )
    def test_rejects_bad_custom(self, lengths):
        with pytest.raises(ValueError):
            SourceHierarchy(lengths)


class TestGeneralize:
    def test_levels(self):
        h = SourceHierarchy()
        addr = 0x0A0B0C0D
        assert h.generalize(addr, 0) == 0x0A0B0C0D
        assert h.generalize(addr, 1) == 0x0A0B0C00
        assert h.generalize(addr, 2) == 0x0A0B0000
        assert h.generalize(addr, 3) == 0x0A000000
        assert h.generalize(addr, 4) == 0

    @given(addresses)
    def test_root_always_zero(self, addr):
        h = SourceHierarchy()
        assert h.generalize(addr, h.root_level) == 0

    @given(addresses)
    def test_generalization_is_monotone(self, addr):
        h = SourceHierarchy()
        # Each level's value must be a prefix of the previous one.
        previous = addr
        for level in range(h.num_levels):
            value = h.generalize(addr, level)
            assert h.generalize(previous, level) == value
            previous = value

    @given(addresses)
    def test_ancestors_enumerate_all_levels(self, addr):
        h = SourceHierarchy()
        items = list(h.ancestors(addr))
        assert [lvl for lvl, _ in items] == list(range(h.num_levels))
        for level, value in items:
            assert value == h.generalize(addr, level)


class TestAccessors:
    def test_prefix_at(self):
        h = SourceHierarchy()
        p = h.prefix_at(0x0A000000, 3)
        assert str(p) == "10.0.0.0/8"

    def test_level_of_length(self):
        h = SourceHierarchy()
        assert h.level_of_length(24) == 1
        with pytest.raises(ValueError):
            h.level_of_length(20)

    def test_equality_and_hash(self):
        assert SourceHierarchy() == SourceHierarchy("byte")
        assert SourceHierarchy() != SourceHierarchy("bit")
        assert hash(SourceHierarchy()) == hash(SourceHierarchy("byte"))

    def test_leaf_and_root_levels(self):
        h = SourceHierarchy()
        assert h.leaf_level == 0
        assert h.root_level == 4
        assert h.length_at(h.leaf_level) == 32
