"""Tests for the experiment registry and parameter binding."""

import pytest

from repro.experiments import (
    Experiment,
    ExperimentError,
    Param,
    experiment_names,
    get_experiment,
    make_experiment,
)
from repro.experiments.registry import register_experiment


class TestRegistry:
    def test_at_least_four_experiments(self):
        assert len(experiment_names()) >= 4

    def test_paper_artefacts_registered(self):
        names = experiment_names()
        for expected in (
            "hidden-hhh", "window-sensitivity", "decay-comparison",
            "batch-throughput",
        ):
            assert expected in names

    def test_get_unknown_raises(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("nope")

    def test_every_experiment_declares_contract(self):
        for name in experiment_names():
            cls = get_experiment(name)
            assert cls.name == name
            assert cls.description
            assert cls.default_trace
            assert cls.smoke_trace
            for param in cls.params():
                assert param.name
                assert param.kind

    def test_duplicate_registration_rejected(self):
        class Dupe(Experiment):
            name = "hidden-hhh"

            def run(self, trace, label="trace"):
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_experiment(Dupe)


class TestParamBinding:
    def test_defaults_used(self):
        exp = make_experiment("hidden-hhh")
        assert exp.bound_params["mode"] == "unique"
        assert exp.bound_params["window_sizes"] == (5.0, 10.0, 20.0)

    def test_params_callable_on_class_and_instance(self):
        cls = get_experiment("hidden-hhh")
        declared = cls.params()
        assert declared and all(p.name for p in declared)
        # bound values live on `bound_params`, so params() stays callable
        # on instances too.
        assert make_experiment("hidden-hhh").params() == declared

    def test_string_overrides_coerced(self):
        exp = make_experiment(
            "hidden-hhh", window_sizes="5,10", thresholds="0.05", step="2"
        )
        assert exp.bound_params["window_sizes"] == (5.0, 10.0)
        assert exp.bound_params["thresholds"] == (0.05,)
        assert exp.bound_params["step"] == 2.0

    def test_typed_overrides_accepted(self):
        exp = make_experiment("decay-comparison", window_size=5.0, seed=3)
        assert exp.bound_params["window_size"] == 5.0
        assert exp.bound_params["seed"] == 3

    def test_unknown_param_rejected(self):
        with pytest.raises(ExperimentError, match="no parameter"):
            make_experiment("hidden-hhh", bogus=1)

    def test_bad_type_rejected(self):
        with pytest.raises(ExperimentError, match="bad value"):
            make_experiment("decay-comparison", counters_per_level="many")

    def test_choice_rejected(self):
        with pytest.raises(ExperimentError, match="one of"):
            make_experiment("hidden-hhh", mode="fancy")

    def test_check_rejects_bad_phi(self):
        with pytest.raises(ExperimentError, match="phi"):
            make_experiment("decay-comparison", phi=1.5)
        with pytest.raises(ExperimentError, match="phi"):
            make_experiment("window-sensitivity", phi="0")

    def test_check_rejects_bad_threshold_list(self):
        with pytest.raises(ExperimentError, match="phi"):
            make_experiment("hidden-hhh", thresholds="0.05,2.0")


class TestRunContract:
    def test_run_produces_uniform_result(self, tiny_trace):
        exp = make_experiment(
            "hidden-hhh", window_sizes=(2.0,), thresholds=(0.05,)
        )
        result = exp.run(tiny_trace, label="tiny")
        assert result.experiment == "hidden-hhh"
        assert result.params["window_sizes"] == (2.0,)
        assert result.rows and all(isinstance(r, dict) for r in result.rows)
        assert result.traces[0].label == "tiny"
        assert result.traces[0].num_packets == len(tiny_trace)
        assert "max_hidden_percent" in result.headline

    def test_run_many_pools_rows_and_headline(self, tiny_trace, calm_small_trace):
        exp = make_experiment(
            "hidden-hhh", window_sizes=(2.0,), thresholds=(0.05,)
        )
        pooled = exp.run_many(
            [tiny_trace, calm_small_trace], labels=["a", "b"]
        )
        assert len(pooled.rows) == 2
        assert [t.label for t in pooled.traces] == ["a", "b"]
        singles = [
            exp.run(t, label)
            for t, label in [(tiny_trace, "a"), (calm_small_trace, "b")]
        ]
        assert pooled.headline["max_hidden_percent"] == max(
            s.headline["max_hidden_percent"] for s in singles
        )

    def test_trace_stats_rows(self, tiny_trace):
        result = make_experiment("trace-stats").run(tiny_trace)
        metrics = {row["metric"] for row in result.rows}
        assert "num_packets" in metrics
        assert "gini_coefficient" in metrics

    def test_batch_throughput_unknown_detector(self, tiny_trace):
        exp = make_experiment("batch-throughput", detectors="nope")
        with pytest.raises(ExperimentError, match="unknown detector"):
            exp.run(tiny_trace)
