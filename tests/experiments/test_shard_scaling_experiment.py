"""The shard-scaling experiment: rows, accuracy, and parameter errors."""

import pytest

from repro.experiments import (
    ExperimentError,
    make_experiment,
    run_experiment,
    validate_result_dict,
)
from repro.trace import build_trace


@pytest.fixture(scope="module")
def tiny_trace():
    return build_trace("zipf:duration=6")


class TestShardScaling:
    def test_rows_and_headline(self, tiny_trace):
        exp = make_experiment(
            "shard-scaling", shards="1,2", repeats=1, limit=1500
        )
        result = exp.run(tiny_trace)
        assert [row["shards"] for row in result.rows] == [1, 2]
        for row in result.rows:
            assert row["backend"] == "serial"
            assert row["pps"] > 0
            assert 0.0 <= row["jaccard_vs_single"] <= 1.0
        assert result.rows[0]["speedup"] == 1.0
        assert result.headline["min_jaccard"] >= 0.0
        assert result.headline["reference_report_size"] >= 0

    def test_key_partitioned_reports_stay_equivalent(self, tiny_trace):
        """The accuracy column is the acceptance story: sharded reports
        match single-stream reports (Jaccard 1.0) for the default
        tracked-candidate detector on an uncontended trace."""
        exp = make_experiment(
            "shard-scaling", shards="1,4", repeats=1, limit=1500
        )
        result = exp.run(tiny_trace)
        assert result.headline["min_jaccard"] == 1.0

    def test_speedup_baseline_is_smallest_shard_count(self, tiny_trace):
        """Sweep order does not change the baseline: speedup is always
        relative to the smallest swept shard count."""
        exp = make_experiment(
            "shard-scaling", shards="4,1", repeats=1, limit=1000
        )
        result = exp.run(tiny_trace)
        by_shards = {row["shards"]: row for row in result.rows}
        assert by_shards[1]["speedup"] == 1.0
        assert by_shards[4]["speedup"] == pytest.approx(
            by_shards[4]["pps"] / by_shards[1]["pps"], abs=0.01
        )

    def test_enumerable_detector_required(self, tiny_trace):
        exp = make_experiment("shard-scaling", detector="countmin",
                              repeats=1, limit=500)
        with pytest.raises(ExperimentError, match="cannot enumerate"):
            exp.run(tiny_trace)

    def test_unknown_detector_rejected(self, tiny_trace):
        exp = make_experiment("shard-scaling", detector="nope",
                              repeats=1, limit=500)
        with pytest.raises(ExperimentError, match="unknown detector"):
            exp.run(tiny_trace)

    def test_bad_shard_list_rejected(self):
        with pytest.raises(ExperimentError, match="shard counts"):
            make_experiment("shard-scaling", shards="0,2")

    def test_duplicate_shard_counts_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate"):
            make_experiment("shard-scaling", shards="4,4,1")

    def test_unknown_param_lists_declared_params(self):
        with pytest.raises(ExperimentError) as excinfo:
            make_experiment("shard-scaling", shard="1,2")
        message = str(excinfo.value)
        assert "did you mean 'shards'" in message
        assert "declared parameters" in message
        assert "workers (int, default 1)" in message

    def test_smoke_artifact_validates(self):
        result = run_experiment("shard-scaling", smoke=True)
        validate_result_dict(result.to_dict())
        assert [row["shards"] for row in result.rows] == [1, 2]

    def test_spacesaving_detector_supported(self, tiny_trace):
        exp = make_experiment(
            "shard-scaling", detector="spacesaving", shards="1,2",
            repeats=1, limit=800,
        )
        result = exp.run(tiny_trace)
        assert len(result.rows) == 2
