"""Tests for the uniform result artifact: schema, JSON round-trips."""

import json

import numpy as np
import pytest

from repro.experiments import (
    SCHEMA_ID,
    ExperimentResult,
    TraceProvenance,
    jsonify,
    validate_result_dict,
)


def _sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment="hidden-hhh",
        params={"window_sizes": [5.0, 10.0], "mode": "unique"},
        rows=[
            {"trace": "day0", "window_s": 5.0, "hidden_%": 16.7},
            {"trace": "day0", "window_s": 10.0, "hidden_%": 22.2},
        ],
        traces=[
            TraceProvenance(
                label="day0", num_packets=1000, duration_s=10.0,
                total_bytes=700000, spec="caida:day=0,duration=10",
            )
        ],
        headline={"max_hidden_percent": 22.2},
        timings={"trace_build_s": 0.1, "run_s": 0.2},
    )


class TestJsonify:
    def test_numpy_scalars_coerced(self):
        out = jsonify({"a": np.int64(3), "b": np.float64(1.5)})
        assert out == {"a": 3, "b": 1.5}
        assert type(out["a"]) is int
        assert type(out["b"]) is float

    def test_tuples_become_lists(self):
        assert jsonify((1.0, 2.0)) == [1.0, 2.0]

    def test_arrays_become_lists(self):
        assert jsonify(np.array([1, 2])) == [1, 2]

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            jsonify(object())


class TestRoundTrip:
    def test_to_json_from_json(self):
        result = _sample_result()
        text = result.to_json()
        rebuilt = ExperimentResult.from_json(text)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.experiment == "hidden-hhh"
        assert rebuilt.headline == {"max_hidden_percent": 22.2}
        assert rebuilt.traces[0].spec == "caida:day=0,duration=10"

    def test_to_json_writes_file(self, tmp_path):
        path = tmp_path / "result.json"
        result = _sample_result()
        result.to_json(path)
        rebuilt = ExperimentResult.from_json(path)
        assert rebuilt.to_dict() == result.to_dict()

    def test_document_is_schema_tagged(self):
        document = json.loads(_sample_result().to_json())
        assert document["schema"] == SCHEMA_ID
        validate_result_dict(document)

    def test_extras_never_serialized(self):
        result = _sample_result()
        result.extras["rich"] = object()
        document = json.loads(result.to_json())
        assert "extras" not in document

    def test_table_renders_rows(self):
        table = _sample_result().to_table()
        assert "hidden_%" in table
        assert "day0" in table


class TestValidate:
    def test_accepts_valid(self):
        validate_result_dict(_sample_result().to_dict())

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="object"):
            validate_result_dict([1, 2])

    def test_rejects_wrong_schema(self):
        document = _sample_result().to_dict()
        document["schema"] = "something/else"
        with pytest.raises(ValueError, match="schema"):
            validate_result_dict(document)

    def test_rejects_missing_keys(self):
        document = _sample_result().to_dict()
        del document["rows"]
        with pytest.raises(ValueError, match="missing"):
            validate_result_dict(document)

    def test_rejects_non_dict_rows(self):
        document = _sample_result().to_dict()
        document["rows"] = [1, 2]
        with pytest.raises(ValueError, match="row"):
            validate_result_dict(document)

    def test_rejects_bad_provenance(self):
        document = _sample_result().to_dict()
        del document["traces"][0]["num_packets"]
        with pytest.raises(ValueError, match="num_packets"):
            validate_result_dict(document)

    def test_rejects_non_numeric_timings(self):
        document = _sample_result().to_dict()
        document["timings"]["run_s"] = "fast"
        with pytest.raises(ValueError, match="timings"):
            validate_result_dict(document)

    def test_from_dict_validates(self):
        with pytest.raises(ValueError):
            ExperimentResult.from_dict({"schema": SCHEMA_ID})


class TestRunnerIntegration:
    def test_runner_attaches_provenance_and_timings(self):
        from repro.experiments import run_experiment

        result = run_experiment(
            "trace-stats", trace_specs=["calm:duration=4"]
        )
        assert result.traces[0].spec == "calm:duration=4"
        assert result.traces[0].label == "calm"
        assert set(result.timings) == {"trace_build_s", "run_s"}
        validate_result_dict(json.loads(result.to_json()))

    def test_runner_smoke_mode(self):
        from repro.experiments import get_experiment, run_experiment

        result = run_experiment("batch-throughput", smoke=True)
        cls = get_experiment("batch-throughput")
        assert result.traces[0].spec == cls.smoke_trace
        assert result.params["repeats"] == 1

    def test_runner_explicit_overrides_beat_smoke(self):
        from repro.experiments import run_experiment

        result = run_experiment(
            "batch-throughput", smoke=True,
            overrides={"repeats": 2, "detectors": "countmin"},
        )
        assert result.params["repeats"] == 2
        assert result.params["detectors"] == ("countmin",)

    def test_runner_label_mismatch(self):
        from repro.experiments import ExperimentError, run_experiment

        with pytest.raises(ExperimentError, match="labels"):
            run_experiment(
                "trace-stats", trace_specs=["calm:duration=4"],
                labels=["a", "b"],
            )
