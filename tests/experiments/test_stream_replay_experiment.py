"""The stream-replay experiment: emission rows, churn during drift, and
the acceptance criterion — churn flips during the ddos-burst regime."""

import pytest

from repro.experiments import make_experiment, run_experiment
from repro.experiments.base import ExperimentError
from repro.trace.spec import build_trace


@pytest.fixture(scope="module")
def drift_result():
    return run_experiment(
        "stream-replay",
        trace_specs=["drift:duration=30"],
        overrides={"chunk": 2048, "emit": "2s"},
    )


class TestStreamReplay:
    def test_rows_cover_the_stream(self, drift_result):
        rows = drift_result.rows
        assert rows
        assert sum(r["packets"] for r in rows) == (
            drift_result.headline["stream_packets"]
        )
        assert [r["emission"] for r in rows] == list(range(len(rows)))

    def test_churn_flips_during_the_burst_regime(self, drift_result):
        """The acceptance criterion: on the calm -> ddos-burst -> calm
        splice, at least 3 emissions inside the burst third must flip
        membership (entries or exits)."""
        duration = 30.0
        burst = [
            row for row in drift_result.rows
            if row["t0"] >= duration / 3 and row["t1"] <= 2 * duration / 3
        ]
        assert len(burst) >= 3
        flips = [
            row for row in burst
            if row["entries"] + row["exits"] > 0
        ]
        assert len(flips) >= 3
        assert drift_result.headline["churn_flips"] >= 3
        assert drift_result.headline["num_emissions"] >= 3

    def test_result_serializes(self, drift_result, tmp_path):
        from repro.experiments import validate_result_dict

        validate_result_dict(drift_result.to_dict())
        path = tmp_path / "stream.json"
        drift_result.to_json(path)
        assert path.exists()

    def test_smoke_configuration_is_bounded(self):
        result = run_experiment("stream-replay", smoke=True)
        assert result.headline["stream_packets"] <= 30_000

    def test_source_param_overrides_the_trace(self):
        result = run_experiment(
            "stream-replay",
            trace_specs=["calm:duration=2"],
            overrides={
                "source": "repeat:zipf:duration=1,sources=100",
                "max_packets": 4000,
                "emit": "1000p",
                "chunk": 512,
            },
        )
        assert result.headline["stream_packets"] == 4000
        assert result.headline["source"].startswith("repeat:")
        # Provenance reflects the stream actually consumed, not the
        # ignored input trace.
        assert result.traces[0].num_packets == 4000

    def test_sharded_run_matches_plain_reports(self):
        trace_spec = ["drift:duration=10"]
        overrides = {"chunk": 1024, "emit": "2s"}
        plain = run_experiment("stream-replay", trace_spec,
                               overrides=overrides)
        sharded = run_experiment(
            "stream-replay", trace_spec, overrides={**overrides, "shards": 3}
        )
        # Key partitioning is exact bookkeeping: same report sizes.
        assert [r["report_size"] for r in sharded.rows] == [
            r["report_size"] for r in plain.rows
        ]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ExperimentError):
            make_experiment("stream-replay", emit="sideways")
        with pytest.raises(ExperimentError):
            make_experiment("stream-replay", chunk=0)
        exp = make_experiment("stream-replay", detector="countmin")
        with pytest.raises(ExperimentError, match="enumerate"):
            exp.run(build_trace("calm:duration=2"))
        exp = make_experiment("stream-replay", detector="bogus")
        with pytest.raises(ExperimentError, match="unknown detector"):
            exp.run(build_trace("calm:duration=2"))
