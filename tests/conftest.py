"""Shared fixtures.

Traces are expensive to generate, so the standard ones are session-scoped;
tests must treat them as immutable (Trace is immutable by design).
"""

from __future__ import annotations

import pytest

from repro.trace import clear_trace_cache, presets
from repro.trace.config import (
    BurstConfig,
    ChurnConfig,
    HeavyEpisodeConfig,
    RateConfig,
    SyntheticTraceConfig,
)
from repro.trace.generator import generate_trace


@pytest.fixture(autouse=True)
def _fresh_trace_cache():
    """Cross-test isolation for the TraceSpec build memo.

    A test that builds presets through ``TraceSpec.build()`` must not
    poison the process-wide LRU (entries, hit/miss counters) for later
    tests; every test starts and ends with an empty cache."""
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.fixture(scope="session")
def small_trace():
    """A 20-second day-0-flavoured trace (fast, still structured)."""
    return presets.caida_like_day(0, duration=20.0)


@pytest.fixture(scope="session")
def calm_small_trace():
    """A 20-second calm trace (no bursts, no episodes, no churn)."""
    return presets.calm_trace(duration=20.0)


@pytest.fixture(scope="session")
def tiny_config():
    """A deliberately tiny generator config for fast structural tests."""
    return SyntheticTraceConfig(
        duration_s=5.0,
        num_sources=200,
        num_networks=4,
        subnets_per_network=4,
        rate=RateConfig(base_rate=300.0, busy_factor=1.5),
        churn=ChurnConfig(),
        bursts=BurstConfig(bursts_per_epoch=0.5, burst_packets=20),
        episodes=HeavyEpisodeConfig(episodes_per_minute=20.0),
        seed=7,
    )


@pytest.fixture(scope="session")
def tiny_trace(tiny_config):
    """The trace generated from ``tiny_config``."""
    return generate_trace(tiny_config)
