"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["stats"],
            ["fig2", "--days", "1"],
            ["fig3"],
            ["sec3"],
            ["pcap", "--out", "x.pcap"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "packets" in out

    def test_fig2_small(self, capsys):
        assert main([
            "fig2", "--duration", "10", "--days", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "hidden_%" in out
        assert "max hidden" in out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--duration", "25"]) == 0
        out = capsys.readouterr().out
        assert "delta_ms" in out

    def test_sec3_small(self, capsys):
        assert main(["sec3", "--duration", "15", "--window", "5"]) == 0
        out = capsys.readouterr().out
        assert "td-hhh" in out

    def test_pcap_export(self, tmp_path, capsys):
        out_file = tmp_path / "out.pcap"
        assert main([
            "pcap", "--out", str(out_file), "--duration", "2",
        ]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out
