"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_names, validate_result_dict


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["stats"],
            ["fig2", "--days", "1"],
            ["fig3"],
            ["sec3"],
            ["pcap", "--out", "x.pcap"],
            ["run", "hidden-hhh"],
            ["experiments"],
            ["scenarios"],
            ["detectors"],
            ["bench"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestInputValidation:
    @pytest.mark.parametrize("argv", [
        ["stats", "--duration", "-5"],
        ["stats", "--duration", "0"],
        ["stats", "--day", "7"],
        ["fig2", "--duration", "-1"],
        ["fig2", "--days", "0"],
        ["fig3", "--phi", "1.5"],
        ["fig3", "--phi", "0"],
        ["fig3", "--duration", "nope"],
        ["sec3", "--window", "-2"],
        ["sec3", "--phi", "-0.1"],
        ["bench", "--duration", "0"],
        ["pcap", "--out", "x.pcap", "--duration", "-3"],
    ])
    def test_garbage_rejected_by_argparse(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_experiment_clean_error(self, capsys):
        assert main(["run", "no-such-experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_bad_set_pair_clean_error(self, capsys):
        assert main(["run", "hidden-hhh", "--set", "nonsense"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_unknown_param_clean_error(self, capsys):
        assert main(["run", "hidden-hhh", "--set", "bogus=1"]) == 2
        assert "no parameter" in capsys.readouterr().err

    def test_bad_trace_spec_clean_error(self, capsys):
        assert main(["run", "trace-stats", "--trace", "marsnet"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_scenario_param_clean_error(self, capsys):
        assert main(
            ["run", "trace-stats", "--trace", "caida:day=9,duration=5"]
        ) == 2
        assert "day must be" in capsys.readouterr().err

    def test_mistyped_scenario_param_clean_error(self, capsys):
        # A float day binds the builder signature but explodes inside it;
        # the spec layer must still map that to a clean exit.
        assert main(
            ["run", "trace-stats", "--trace", "caida:day=1.5,duration=3"]
        ) == 2
        assert "rejected" in capsys.readouterr().err

    def test_harness_cross_param_error_clean(self, capsys):
        # Each param passes its own check, but the harness enforces
        # delta < baseline_size; must not escape as a traceback.
        assert main(
            ["run", "window-sensitivity", "--set", "baseline_size=0.05"]
        ) == 2
        assert "delta" in capsys.readouterr().err

    def test_bench_unknown_detector_clean_error(self, capsys):
        assert main(["bench", "--detector", "nope", "--duration", "2"]) == 2
        assert "unknown detector" in capsys.readouterr().err


class TestCommands:
    def test_stats(self, capsys):
        assert main(["stats", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "packets" in out

    def test_fig2_small(self, capsys):
        assert main([
            "fig2", "--duration", "10", "--days", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "hidden_%" in out
        assert "max hidden" in out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--duration", "25"]) == 0
        out = capsys.readouterr().out
        assert "delta_ms" in out

    def test_sec3_small(self, capsys):
        assert main(["sec3", "--duration", "15", "--window", "5"]) == 0
        out = capsys.readouterr().out
        assert "td-hhh" in out

    def test_pcap_export(self, tmp_path, capsys):
        out_file = tmp_path / "out.pcap"
        assert main([
            "pcap", "--out", str(out_file), "--duration", "2",
        ]) == 0
        assert out_file.exists()
        assert "wrote" in capsys.readouterr().out


class TestRegistryCommands:
    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("hidden-hhh", "window-sensitivity", "decay-comparison",
                     "batch-throughput"):
            assert name in out

    def test_experiments_names_plain(self, capsys):
        assert main(["experiments", "--names"]) == 0
        out = capsys.readouterr().out
        assert set(out.split()) == set(experiment_names())

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("caida", "zipf", "ddos-burst", "flash-crowd",
                     "portscan", "pcap"):
            assert name in out

    def test_run_with_trace_and_set(self, capsys):
        assert main([
            "run", "hidden-hhh",
            "--trace", "caida:day=0,duration=10",
            "--set", "window_sizes=5", "--set", "thresholds=0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "hidden_%" in out
        assert "max_hidden_percent" in out
        assert "caida:day=0,duration=10" in out

    def test_run_json_artifact_validates(self, tmp_path, capsys):
        out_file = tmp_path / "result.json"
        assert main([
            "run", "trace-stats", "--trace", "calm:duration=4",
            "--json", str(out_file),
        ]) == 0
        document = json.loads(out_file.read_text())
        validate_result_dict(document)
        assert document["experiment"] == "trace-stats"
        assert document["traces"][0]["spec"] == "calm:duration=4"
        assert capsys.readouterr().out  # table printed too

    @pytest.mark.parametrize("name", sorted(experiment_names()))
    def test_every_experiment_smoke_runs_with_valid_json(
        self, name, tmp_path, capsys
    ):
        out_file = tmp_path / f"{name}.json"
        assert main([
            "run", name, "--smoke", "--json", str(out_file),
        ]) == 0
        document = json.loads(out_file.read_text())
        validate_result_dict(document)
        assert document["experiment"] == name
        assert document["rows"]

    def test_fig2_alias_json(self, tmp_path):
        out_file = tmp_path / "fig2.json"
        assert main([
            "fig2", "--duration", "10", "--days", "2",
            "--json", str(out_file),
        ]) == 0
        document = json.loads(out_file.read_text())
        validate_result_dict(document)
        assert document["experiment"] == "hidden-hhh"
        assert len(document["traces"]) == 2
        assert document["traces"][0]["label"] == "day0"
