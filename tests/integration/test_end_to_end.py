"""Cross-module integration tests.

These exercise the same paths as the paper's experiments, end to end, on
small traces: generator -> windows -> exact HHH -> metrics, and the
streaming detectors against exact ground truth.
"""

import pytest

from repro.hhh.exact_hhh import ExactHHH
from repro.hhh.ground_truth import window_ground_truth
from repro.metrics.classification import classify_sets
from repro.metrics.hidden import hidden_hhh_unique
from repro.sketch.rhhh import RHHH
from repro.windows.disjoint import DisjointWindows
from repro.windows.sliding import SlidingWindows


class TestGroundTruthPipeline:
    def test_window_ground_truth_series(self, small_trace):
        detector = ExactHHH(0.05)
        windows = list(DisjointWindows(4.0).over_trace(small_trace))
        series = list(window_ground_truth(small_trace, windows, detector))
        assert len(series) == len(windows)
        for window, result in series:
            assert result.total_bytes == small_trace.bytes_in_range(
                window.t0, window.t1
            )

    def test_sliding_supersets_disjoint_detections(self, small_trace):
        """Every disjoint detection is found by the sliding schedule at
        the same instant (the hidden set is one-sided)."""
        detector = ExactHHH(0.05)
        disjoint = list(
            window_ground_truth(
                small_trace,
                list(DisjointWindows(4.0).over_trace(small_trace)),
                detector,
            )
        )
        sliding = list(
            window_ground_truth(
                small_trace,
                list(SlidingWindows(4.0, 1.0).over_trace(small_trace)),
                detector,
            )
        )
        report = hidden_hhh_unique(disjoint, sliding)
        disjoint_union = set()
        for _, result in disjoint:
            disjoint_union |= result.prefixes
        sliding_union = set()
        for _, result in sliding:
            sliding_union |= result.prefixes
        assert disjoint_union <= sliding_union
        assert report.total == len(sliding_union)


class TestStreamingVsExact:
    def test_full_rhhh_matches_exact_on_window(self, small_trace):
        """Per-level Space-Saving with generous capacity must reproduce the
        exact HHH set of a window (same semantics, enough memory)."""
        phi = 0.05
        t0, t1 = small_trace.start_time, small_trace.start_time + 5.0
        exact = ExactHHH(phi).detect_window(small_trace, t0, t1)

        det = RHHH(counters_per_level=4096, sample_levels=False)
        i, j = small_trace.index_range(t0, t1)
        window_bytes = 0
        for p in range(i, j):
            w = int(small_trace.length[p])
            det.update(int(small_trace.src[p]), w)
            window_bytes += w
        approx = det.query_hhh(phi * window_bytes)

        report = classify_sets(exact.prefixes, approx.prefixes)
        assert report.recall == 1.0
        assert report.precision > 0.9

    def test_sampled_rhhh_reasonable(self, small_trace):
        phi = 0.1
        t0, t1 = small_trace.start_time, small_trace.start_time + 10.0
        exact = ExactHHH(phi).detect_window(small_trace, t0, t1)
        det = RHHH(counters_per_level=256, seed=5, sample_levels=True)
        i, j = small_trace.index_range(t0, t1)
        window_bytes = 0
        for p in range(i, j):
            w = int(small_trace.length[p])
            det.update(int(small_trace.src[p]), w)
            window_bytes += w
        approx = det.query_hhh(phi * window_bytes)
        report = classify_sets(exact.prefixes, approx.prefixes)
        # Sampling is noisy on a 10-second window; just require overlap.
        if exact.prefixes:
            assert report.recall > 0.3


class TestPublicAPI:
    def test_top_level_imports(self):
        import repro

        assert repro.__version__
        assert repro.Prefix(0, 0).is_root()
        trace = repro.presets.calm_trace(duration=3.0)
        result = repro.ExactHHH(0.1).detect_window(
            trace, trace.start_time, trace.end_time + 1e-9
        )
        assert result.total_bytes == trace.total_bytes
