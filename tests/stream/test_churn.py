"""Churn accounting between consecutive online reports."""

import pytest

from repro.stream import report_churn
from repro.stream.churn import churn_series, emission_rows
from repro.stream.emission import Emission
from repro.windows.schedule import Window


def _emission(index, report, packets=10, volume=1000):
    return Emission(
        index=index,
        window=Window(float(index), float(index + 1), index),
        report=report,
        packets=packets,
        bytes=volume,
        start_packet=index * packets,
        end_packet=(index + 1) * packets,
        chunk_index=index,
        wall_s=0.001,
    )


class TestReportChurn:
    def test_identical_reports_have_no_churn(self):
        report = {1: 10.0, 2: 5.0}
        stats = report_churn(report, dict(report))
        assert stats.jaccard == 1.0
        assert stats.entries == stats.exits == 0
        assert stats.rank_displacement == 0.0
        assert not stats.flipped

    def test_entries_and_exits(self):
        stats = report_churn({1: 10.0, 2: 5.0}, {2: 6.0, 3: 4.0, 4: 2.0})
        assert stats.entries == 2
        assert stats.exits == 1
        assert stats.common == 1
        assert stats.jaccard == pytest.approx(1 / 4)
        assert stats.flipped

    def test_empty_reports_agree_perfectly(self):
        stats = report_churn({}, {})
        assert stats.jaccard == 1.0
        assert not stats.flipped

    def test_rank_displacement_sees_reshuffles(self):
        # Same membership, reversed volume order: every key moves by the
        # maximal displacement while jaccard stays 1.0.
        previous = {1: 30.0, 2: 20.0, 3: 10.0}
        current = {1: 10.0, 2: 20.0, 3: 30.0}
        stats = report_churn(previous, current)
        assert stats.jaccard == 1.0
        assert stats.rank_displacement == pytest.approx(4 / 3)

    def test_rank_displacement_zero_below_two_common_keys(self):
        assert report_churn({1: 5.0}, {1: 9.0}).rank_displacement == 0.0


class TestSeries:
    def test_first_emission_counts_as_entries(self):
        series = churn_series(
            [_emission(0, {1: 5.0, 2: 3.0}), _emission(1, {1: 5.0})]
        )
        assert series[0].entries == 2
        assert series[0].exits == 0
        assert series[1].exits == 1

    def test_emission_rows_are_json_flat(self):
        from repro.experiments.result import jsonify

        rows = emission_rows(
            [_emission(0, {1: 5.0}), _emission(1, {2: 4.0})]
        )
        assert len(rows) == 2
        jsonify(rows)  # must not raise
        assert rows[1]["entries"] == 1 and rows[1]["exits"] == 1
        assert set(rows[0]) == {
            "emission", "t0", "t1", "packets", "bytes", "report_size",
            "jaccard", "entries", "exits", "rank_disp", "pps", "wall_ms",
        }
