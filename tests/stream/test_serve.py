"""The multi-tenant serve runtime: bit-identical emissions vs the serial
pipeline, checkpoint migration across pools, and tenant failure isolation."""

import dataclasses
from functools import partial

import pytest

from repro.core import get_spec, make_detector
from repro.engine import ServeError, ServePool, ShardedDetector
from repro.stream import (
    ServeRuntime,
    StreamPipeline,
    parse_emission_policy,
    parse_stream_spec,
)
from repro.stream.source import StreamSource

CHUNK = 1024
EMIT = "2s"
PHI = 0.02
SPECS = {
    "alpha": "drift:duration=12,seed=3",
    "beta": "zipf:duration=12,seed=9",
}


def _strip(emission):
    """Emissions minus the wall clock (the only nondeterministic field)."""
    return dataclasses.replace(emission, wall_s=0.0)


def _serial_emissions(source_spec, detector="countmin-hh", shards=3,
                      max_packets=9000, **kwargs):
    spec = get_spec(detector)
    det = (
        ShardedDetector(spec.factory, shards) if shards > 1
        else spec.factory()
    )
    pipeline = StreamPipeline(
        det, parse_emission_policy(EMIT), phi=PHI,
        timestamped=spec.timestamped, **kwargs,
    )
    return [
        _strip(e) for e in pipeline.process(
            parse_stream_spec(source_spec), CHUNK, max_packets
        )
    ]


class ExplodingMidstream:
    """Picklable factory: a countmin-hh that dies after ``limit`` packets."""

    def __init__(self, limit):
        self.limit = limit

    def __call__(self):
        from tests.engine.test_serve_pool import ExplodingDetector

        return ExplodingDetector(self.limit)


class EmptyChunkSource(StreamSource):
    """Wraps a source, interleaving a zero-length chunk before every real
    one — legal under the source contract (only ``None`` is EOS)."""

    def __init__(self, inner):
        self.inner = inner

    def segments(self):
        return self.inner.segments()

    def chunks(self, chunk_size):
        for chunk in self.inner.chunks(chunk_size):
            yield chunk.slice_index(0, 0)
            yield chunk


class TestEquivalence:
    @pytest.mark.parametrize("detector", ["countmin-hh", "spacesaving"])
    def test_tenant_emissions_match_serial_pipeline(self, detector):
        """Every tenant's emission sequence is bit-identical (reports
        including dict order; wall_s excluded) to a serial per-tenant
        StreamPipeline over the same stream spec."""
        reference = {
            name: _serial_emissions(spec, detector=detector)
            for name, spec in SPECS.items()
        }
        with ServeRuntime(workers=2, shards=3, chunk_size=CHUNK) as runtime:
            for name, spec in SPECS.items():
                runtime.add_tenant(name, detector, spec, emit=EMIT,
                                   phi=PHI, max_packets=9000)
            observed = {name: [] for name in SPECS}
            for name, emission in runtime.run():
                observed[name].append(_strip(emission))
            assert not runtime.failed
        for name in SPECS:
            assert observed[name] == reference[name]
            for mine, theirs in zip(observed[name], reference[name]):
                assert list(mine.report.items()) == list(
                    theirs.report.items()
                )

    def test_single_worker_single_shard_matches_bare_pipeline(self):
        reference = _serial_emissions(SPECS["alpha"], shards=1)
        with ServeRuntime(workers=1, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("t", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000)
            observed = [_strip(e) for _, e in runtime.run()]
        assert observed == reference


class TestMigration:
    def test_checkpoint_rebalance_resume_is_uninterrupted(self):
        """Freeze a tenant on a 2-worker pool, resume on a 1-worker pool:
        the stitched emission sequence equals one uninterrupted serial
        run (the checkpoint is the migration unit)."""
        uninterrupted = _serial_emissions(SPECS["alpha"], shards=4)
        with ServeRuntime(workers=2, shards=4, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("m", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=4000,
                               emit_partial=False)
            first = [_strip(e) for _, e in runtime.run()]
            frozen = runtime.checkpoint_tenant("m")
        with ServeRuntime(workers=1, shards=4, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("m", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000,
                               resume=frozen, fast_forward=True)
            second = [_strip(e) for _, e in runtime.run()]
        merged = first + second
        assert merged == uninterrupted
        for mine, theirs in zip(merged, uninterrupted):
            assert list(mine.report.items()) == list(theirs.report.items())

    def test_serve_checkpoint_resumes_under_serial_pipeline(self):
        """A serve tenant's checkpoint restores into a plain serial
        sharded pipeline and continues bit-identically."""
        uninterrupted = _serial_emissions(SPECS["alpha"], shards=2)
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("m", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=4000,
                               emit_partial=False)
            first = [_strip(e) for _, e in runtime.run()]
            frozen = runtime.checkpoint_tenant("m")
        spec = get_spec("countmin-hh")
        pipeline = StreamPipeline(
            ShardedDetector(spec.factory, 2),
            parse_emission_policy(EMIT), phi=PHI,
            timestamped=spec.timestamped,
        )
        pipeline.restore(frozen)
        source = parse_stream_spec(SPECS["alpha"])
        from repro.stream import skip_packets

        source = skip_packets(source, pipeline.packets)
        remaining = 9000 - pipeline.packets
        second = [
            _strip(e) for e in pipeline.process(source, CHUNK, remaining)
        ]
        assert first + second == uninterrupted

    def test_resume_rejects_exhausted_max_packets(self):
        with ServeRuntime(workers=1, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("m", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=3000,
                               emit_partial=False)
            list(runtime.run())
            frozen = runtime.checkpoint_tenant("m")
        with ServeRuntime(workers=1, shards=2, chunk_size=CHUNK) as runtime:
            with pytest.raises(ValueError, match="max_packets"):
                runtime.add_tenant("m", "countmin-hh", SPECS["alpha"],
                                   max_packets=3000, resume=frozen)


class TestFailureIsolation:
    def test_failing_tenant_retires_without_killing_siblings(self):
        """One tenant's detector explodes midstream: that tenant lands in
        ``failed``, the workers survive, and the sibling tenant's full
        emission sequence still matches the serial reference."""
        reference = _serial_emissions(SPECS["beta"], shards=2)
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            # The limit must trip inside one emission interval: reset-on-
            # emit clears the packet count at each boundary (~850 packets
            # per shard per 2s interval here).
            runtime.add_tenant("doomed", ExplodingMidstream(400),
                               SPECS["alpha"], emit=EMIT, phi=PHI,
                               max_packets=9000)
            runtime.add_tenant("healthy", "countmin-hh", SPECS["beta"],
                               emit=EMIT, phi=PHI, max_packets=9000)
            observed = {"doomed": [], "healthy": []}
            for name, emission in runtime.run():
                observed[name].append(_strip(emission))
            assert "doomed" in runtime.failed
            assert "exploded" in runtime.failed["doomed"]
            assert "healthy" not in runtime.failed
            assert observed["healthy"] == reference
            # The pool is still serving: a fresh tenant opens and runs.
            runtime.pool.open_tenant("fresh", partial(
                make_detector, "countmin-hh"
            ))
            runtime.pool.close_tenant("fresh")

    def test_registration_failures_do_not_leak_tenants(self):
        with ServeRuntime(workers=1, chunk_size=CHUNK) as runtime:
            with pytest.raises(ServeError, match="cannot enumerate"):
                runtime.add_tenant("t", "countmin", SPECS["alpha"])
            with pytest.raises(ValueError, match="max_packets"):
                runtime.add_tenant("t", "countmin-hh", SPECS["alpha"],
                                   max_packets=0)
            # The name is free again after each failed registration.
            runtime.add_tenant("t", "countmin-hh", SPECS["alpha"],
                               max_packets=2000)
            with pytest.raises(ServeError, match="already registered"):
                runtime.add_tenant("t", "countmin-hh", SPECS["alpha"])


class TestLiveLifecycle:
    def test_empty_midstream_chunks_are_not_eos(self):
        """A zero-length chunk between real ones must be skipped, not
        treated as end-of-stream (the regression this PR fixes): the
        emission sequence still equals the serial reference."""
        reference = _serial_emissions(SPECS["alpha"], shards=2)
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            source = EmptyChunkSource(parse_stream_spec(SPECS["alpha"]))
            runtime.add_tenant("t", "countmin-hh", source, emit=EMIT,
                               phi=PHI, max_packets=9000)
            observed = [_strip(e) for _, e in runtime.run()]
            assert not runtime.failed
        assert observed == reference
        assert observed  # the pre-fix behavior produced an empty stream

    def test_admission_while_running(self):
        """A tenant admitted from the on_turn hook mid-run joins the
        round-robin and still matches its serial reference."""
        reference = {
            name: _serial_emissions(spec, shards=2)
            for name, spec in SPECS.items()
        }
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("alpha", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000)

            def admit(turn):
                if turn == 3:
                    runtime.add_tenant("beta", "countmin-hh",
                                       SPECS["beta"], emit=EMIT, phi=PHI,
                                       max_packets=9000)

            runtime.on_turn = admit
            observed = {"alpha": [], "beta": []}
            for name, emission in runtime.run():
                observed[name].append(_strip(emission))
            assert not runtime.failed
        for name in SPECS:
            assert observed[name] == reference[name]

    def test_retire_while_running_resumes_elsewhere(self):
        """Retiring a tenant from the on_turn hook stops it at a chunk
        boundary; its returned checkpoint resumes on a fresh runtime and
        the stitched stream equals one uninterrupted serial run."""
        uninterrupted = _serial_emissions(SPECS["alpha"], shards=2)
        artifact = {}
        with ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("m", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000,
                               emit_partial=False)

            def retire(turn):
                if turn == 4:
                    artifact["ckpt"] = runtime.retire_tenant("m")

            runtime.on_turn = retire
            first = [_strip(e) for _, e in runtime.run()]
            assert runtime.tenants == ()
        assert artifact["ckpt"]["offsets"]["packets"] == 4 * CHUNK
        with ServeRuntime(workers=1, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("m", "countmin-hh", SPECS["alpha"],
                               emit=EMIT, phi=PHI, max_packets=9000,
                               resume=artifact["ckpt"], fast_forward=True)
            second = [_strip(e) for _, e in runtime.run()]
        assert first + second == uninterrupted

    def test_rebalance_to_other_runtime_is_bit_identical(self):
        """rebalance() moves a live tenant onto another runtime (new
        worker layout, same shard count) mid-run; the combined emission
        stream equals one uninterrupted serial run and siblings keep
        streaming untouched."""
        uninterrupted = _serial_emissions(SPECS["alpha"], shards=2)
        sibling_ref = _serial_emissions(SPECS["beta"], shards=2)
        with ServeRuntime(workers=1, shards=2, chunk_size=CHUNK) as a, \
                ServeRuntime(workers=2, shards=2, chunk_size=CHUNK) as b:
            a.add_tenant("moved", "countmin-hh", SPECS["alpha"],
                         emit=EMIT, phi=PHI, max_packets=9000)
            a.add_tenant("sibling", "countmin-hh", SPECS["beta"],
                         emit=EMIT, phi=PHI, max_packets=9000)

            def move(turn):
                if turn == 5:
                    a.rebalance("moved", target=b)

            a.on_turn = move
            observed = {"moved": [], "sibling": []}
            for name, emission in a.run():
                observed[name].append(_strip(emission))
            assert a.tenants == ("sibling",)
            assert b.tenants == ("moved",)
            for name, emission in b.run():
                observed[name].append(_strip(emission))
            assert not a.failed and not b.failed
        assert observed["moved"] == uninterrupted
        assert observed["sibling"] == sibling_ref

    def test_rebalance_rejects_mismatched_shard_count(self):
        with ServeRuntime(workers=1, shards=2, chunk_size=CHUNK) as a, \
                ServeRuntime(workers=1, shards=3, chunk_size=CHUNK) as b:
            a.add_tenant("m", "countmin-hh", SPECS["alpha"],
                         max_packets=2000)
            with pytest.raises(ServeError, match="shard"):
                a.rebalance("m", target=b)
            # The tenant was not retired by the failed validation.
            assert a.tenants == ("m",)

    def test_pipeline_raises_for_failed_and_unknown_tenants(self):
        with ServeRuntime(workers=1, shards=2, chunk_size=CHUNK) as runtime:
            runtime.add_tenant("doomed", ExplodingMidstream(400),
                               SPECS["alpha"], emit=EMIT, phi=PHI,
                               max_packets=9000)
            list(runtime.run())
            assert "doomed" in runtime.failed
            with pytest.raises(ServeError, match="failed"):
                runtime.pipeline("doomed")
            with pytest.raises(ServeError, match="failed"):
                runtime.checkpoint_tenant("doomed")
            with pytest.raises(ServeError, match="unknown"):
                runtime.pipeline("ghost")


class TestRuntimeWiring:
    def test_injected_pool_capacity_must_cover_chunks(self):
        with ServePool(1, chunk_capacity=256) as pool:
            with pytest.raises(ServeError, match="batch boundaries"):
                ServeRuntime(chunk_size=512, pool=pool)
            runtime = ServeRuntime(chunk_size=256, pool=pool)
            runtime.add_tenant("t", "countmin-hh", SPECS["alpha"],
                               max_packets=1000)
            list(runtime.run())
            runtime.close()
            # The injected pool outlives the runtime.
            pool.open_tenant("still-alive", partial(
                make_detector, "countmin-hh"
            ))

    def test_closed_runtime_fences_registration(self):
        runtime = ServeRuntime(workers=1, chunk_size=CHUNK)
        runtime.close()
        runtime.close()
        with pytest.raises(ServeError, match="closed"):
            runtime.add_tenant("t", "countmin-hh", SPECS["alpha"])
