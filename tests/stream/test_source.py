"""Stream sources: chunking, infinite generation, composition ops."""

import numpy as np
import pytest

from repro.stream import (
    InterleaveSource,
    ScenarioSource,
    SpliceSource,
    TraceSource,
    interleave,
    parse_stream_spec,
    rate_rewrite,
    skip_packets,
    splice,
)
from repro.trace.spec import TraceSpec, TraceSpecError, build_trace


@pytest.fixture(scope="module")
def trace():
    return build_trace("zipf:duration=5,sources=200")


class TestChunking:
    def test_chunks_cover_the_trace_exactly(self, trace):
        chunks = list(TraceSource(trace).chunks(700))
        assert sum(len(c) for c in chunks) == len(trace)
        assert all(len(c) == 700 for c in chunks[:-1])
        assert np.array_equal(
            np.concatenate([c.ts for c in chunks]), trace.ts
        )
        assert np.array_equal(
            np.concatenate([c.src for c in chunks]), trace.src
        )

    def test_chunk_larger_than_trace(self, trace):
        chunks = list(TraceSource(trace).chunks(10**9))
        assert len(chunks) == 1
        assert len(chunks[0]) == len(trace)

    def test_chunks_are_traces_in_time_order(self, trace):
        for chunk in TraceSource(trace).chunks(512):
            assert np.all(np.diff(chunk.ts) >= 0)

    def test_bad_chunk_size_rejected(self, trace):
        with pytest.raises(ValueError, match="chunk_size"):
            next(TraceSource(trace).chunks(0))

    def test_empty_trace_yields_nothing(self):
        from repro.trace.container import Trace

        assert list(TraceSource(Trace.empty()).chunks(64)) == []


class TestScenarioSource:
    def test_runs_past_one_cycle(self):
        source = ScenarioSource("zipf:duration=1,sources=100")
        one_cycle = len(build_trace("zipf:duration=1,sources=100"))
        taken = 0
        for chunk in source.chunks(256):
            taken += len(chunk)
            if taken > 3 * one_cycle:
                break
        assert taken > 3 * one_cycle  # kept producing beyond one build

    def test_timeline_is_continuous_and_sorted(self):
        source = ScenarioSource("zipf:duration=1,sources=100", cycles=3)
        segments = list(source.segments())
        assert len(segments) == 3
        ts = np.concatenate([s.ts for s in segments])
        assert np.all(np.diff(ts) >= 0)

    def test_reseeds_each_cycle(self):
        source = ScenarioSource("zipf:duration=1,sources=100", cycles=2)
        first, second = source.segments()
        assert not np.array_equal(first.src, second.src)

    def test_deterministic_for_a_seed(self):
        def take(seed):
            src = ScenarioSource(
                "zipf:duration=1,sources=100", seed=seed, cycles=2
            )
            return np.concatenate([s.src for s in src.segments()])

        assert np.array_equal(take(5), take(5))
        assert not np.array_equal(take(5), take(6))

    def test_rejects_pcap(self):
        with pytest.raises(TraceSpecError, match="pcap"):
            ScenarioSource(TraceSpec.parse("pcap:/tmp/x.pcap"))

    def test_rejects_unknown_scenario_eagerly(self):
        with pytest.raises(TraceSpecError, match="registered scenarios"):
            ScenarioSource("nonsense:duration=1")


class TestOps:
    def test_splice_is_sequential_and_continuous(self, trace):
        spliced = SpliceSource(TraceSource(trace), TraceSource(trace))
        segments = list(spliced.segments())
        assert len(segments) == 2
        assert segments[1].start_time > segments[0].end_time
        assert sum(len(s) for s in segments) == 2 * len(trace)

    def test_interleave_merges_by_timestamp(self, trace):
        overlay = InterleaveSource(TraceSource(trace), TraceSource(trace))
        merged = list(overlay.segments())
        ts = np.concatenate([s.ts for s in merged])
        assert len(ts) == 2 * len(trace)
        assert np.all(np.diff(ts) >= 0)
        # Every original packet appears twice.
        assert np.array_equal(np.unique(ts), np.unique(trace.ts))

    def test_interleave_bounds_memory_with_infinite_sources(self, trace):
        overlay = interleave(
            TraceSource(trace),
            ScenarioSource("zipf:duration=1,sources=100"),
        )
        taken = 0
        for chunk in overlay.chunks(512):
            assert np.all(np.diff(chunk.ts) >= 0)
            taken += len(chunk)
            if taken > 2 * len(trace):
                break
        assert taken > 2 * len(trace)

    def test_rate_rewrite_compresses_time(self, trace):
        fast = rate_rewrite(TraceSource(trace), 2.0)
        (segment,) = fast.segments()
        assert len(segment) == len(trace)
        assert segment.duration == pytest.approx(trace.duration / 2.0)
        assert segment.start_time == pytest.approx(trace.start_time)
        assert np.array_equal(segment.length, trace.length)

    def test_rate_rewrite_rejects_nonpositive(self, trace):
        with pytest.raises(ValueError, match="speedup"):
            rate_rewrite(TraceSource(trace), 0.0)

    def test_skip_packets(self, trace):
        skipped = skip_packets(TraceSource(trace), 100)
        (segment,) = skipped.segments()
        assert len(segment) == len(trace) - 100
        assert np.array_equal(segment.ts, trace.ts[100:])
        # skip=0 is the identity.
        assert skip_packets(TraceSource(trace), 0) is not None

    def test_single_source_facades_pass_through(self, trace):
        source = TraceSource(trace)
        assert splice(source) is source
        assert interleave(source) is source


class TestStreamSpecParsing:
    def test_plain_trace_spec(self):
        source = parse_stream_spec("zipf:duration=1,sources=100")
        assert isinstance(source, TraceSource)

    def test_splice_spec(self):
        source = parse_stream_spec(
            "calm:duration=2+ddos-burst:duration=2"
        )
        assert isinstance(source, SpliceSource)
        assert len(source.sources) == 2

    def test_interleave_spec(self):
        source = parse_stream_spec(
            "calm:duration=2&zipf:duration=2,sources=100"
        )
        assert isinstance(source, InterleaveSource)

    def test_repeat_spec_is_infinite(self):
        source = parse_stream_spec("repeat:zipf:duration=1,sources=100")
        assert isinstance(source, ScenarioSource)
        assert source.cycles is None

    def test_rate_suffix(self):
        from repro.stream import RateRewriteSource

        source = parse_stream_spec("calm:duration=2@x4")
        assert isinstance(source, RateRewriteSource)
        assert source.speedup == 4.0

    def test_bad_specs_rejected(self):
        for bad in ("", "a++b", "calm:duration=2@y3", "calm:duration=2@xq",
                    "&calm:duration=2"):
            with pytest.raises((TraceSpecError, ValueError)):
                parse_stream_spec(bad)


class TestSeedNormalization:
    """A stream spec string is a complete reproducible recipe: the
    resolved base seed is normalised back into ``source.spec``, so a
    serialized fuzz-case artifact replays the exact same packets."""

    def test_same_spec_string_yields_identical_chunks(self):
        one = parse_stream_spec("repeat:zipf:duration=2,seed=7")
        two = parse_stream_spec("repeat:zipf:duration=2,seed=7")
        for _, chunk_a, chunk_b in zip(range(5), one.chunks(512),
                                       two.chunks(512)):
            assert np.array_equal(chunk_a.ts, chunk_b.ts)
            assert np.array_equal(chunk_a.src, chunk_b.src)
            assert np.array_equal(chunk_a.length, chunk_b.length)

    def test_explicit_seed_lands_in_spec(self):
        source = ScenarioSource("zipf:duration=2,seed=7")
        assert source.seed == 7
        assert source.spec.params["seed"] == 7
        assert "seed=7" in source.spec.format()

    def test_default_seed_is_normalised_in(self):
        # No seed in the string: the resolved default still lands in the
        # spec, so format() round-trips to the identical stream.
        source = ScenarioSource("zipf:duration=2")
        assert source.spec.params["seed"] == source.seed
        again = ScenarioSource(source.spec.format())
        assert again.seed == source.seed

    def test_constructor_seed_overrides_spec_param(self):
        source = ScenarioSource("zipf:duration=2,seed=3", seed=9)
        assert source.seed == 9
        assert source.spec.params["seed"] == 9

    def test_unseeded_scenarios_unchanged(self):
        # CAIDA-like days have no seed knob; the spec must stay as-is.
        source = ScenarioSource("caida:day=0,duration=2")
        assert "seed" not in source.spec.params
