"""The streaming pipeline: equivalence with offline windows, mid-chunk
boundaries, bounded infinite runs, and checkpoint/resume bit-identity."""

import numpy as np
import pytest

from repro.core import detector_names, get_spec
from repro.core.checkpoint import CheckpointError
from repro.engine import ShardedDetector
from repro.stream import (
    EveryNPackets,
    EveryTraceSeconds,
    ScenarioSource,
    StreamPipeline,
    TraceSource,
    WindowAligned,
)
from repro.trace.spec import build_trace
from repro.windows import WindowedDetectorDriver

ENUMERABLE = [n for n in detector_names() if get_spec(n).enumerable]
MERGEABLE = [n for n in detector_names() if get_spec(n).mergeable]


@pytest.fixture(scope="module")
def trace():
    return build_trace("caida:day=0,duration=12")


def _pipeline(name, policy, **kwargs):
    spec = get_spec(name)
    return StreamPipeline(
        spec.factory(), policy,
        timestamped=spec.timestamped, **kwargs,
    )


class TestEmissions:
    def test_window_aligned_matches_the_offline_driver(self, trace):
        """Streaming with window-aligned emission reproduces the windowed
        driver's reports exactly — same boundaries, same thresholds —
        even though chunk boundaries fall wherever they fall."""
        driver = WindowedDetectorDriver(
            get_spec("spacesaving").factory, window_size=2.0, phi=0.05
        )
        offline = list(driver.run(trace))

        pipeline = _pipeline(
            "spacesaving", WindowAligned(2.0), phi=0.05, emit_partial=False
        )
        online = list(pipeline.process(TraceSource(trace), 1024))

        assert len(online) == len(offline)
        for emission, (window, report) in zip(online, offline):
            assert emission.window.t1 == window.t1
            assert emission.report == report

    def test_offsets_partition_the_stream(self, trace):
        pipeline = _pipeline("countmin-hh", EveryNPackets(3000), phi=0.01)
        emissions = list(pipeline.process(TraceSource(trace), 1024))
        assert emissions[0].start_packet == 0
        for previous, current in zip(emissions, emissions[1:]):
            assert current.start_packet == previous.end_packet
        assert emissions[-1].end_packet == pipeline.packets == len(trace)
        assert sum(e.packets for e in emissions) == len(trace)
        assert sum(e.bytes for e in emissions) == trace.total_bytes

    def test_packet_policy_counts_exactly(self, trace):
        pipeline = _pipeline("countmin-hh", EveryNPackets(2500), phi=0.01)
        emissions = list(pipeline.process(TraceSource(trace), 999))
        full = [e for e in emissions if not e.partial]
        assert all(e.packets == 2500 for e in full)

    def test_bounded_run_over_an_infinite_source(self):
        pipeline = _pipeline("countmin-hh", EveryNPackets(1000), phi=0.01)
        emissions = list(
            pipeline.process(
                ScenarioSource("zipf:duration=1,sources=100"),
                512,
                max_packets=5000,
            )
        )
        assert pipeline.packets == 5000
        assert [e for e in emissions if not e.partial][-1].end_packet <= 5000

    def test_reset_on_emit_isolates_intervals(self):
        trace = build_trace("zipf:duration=4,sources=50")
        with_reset = _pipeline(
            "spacesaving", EveryTraceSeconds(1.0), phi=0.9
        )
        list(with_reset.process(TraceSource(trace), 256))
        # With phi=0.9 and resets, nothing survives: no single key carries
        # 90% of an interval under a 50-source zipf.
        without_reset = StreamPipeline(
            get_spec("spacesaving").factory(), EveryTraceSeconds(1.0),
            phi=0.9, reset_on_emit=False,
        )
        list(without_reset.process(TraceSource(trace), 256))
        # Accumulated totals must exceed any single interval's.
        assert without_reset.detector.total > 0

    def test_empty_trace_time_windows_emit_empty_reports(self):
        from repro.packet.model import Packet
        from repro.trace.container import Trace

        trace = Trace.from_packets(
            [Packet(ts=0.1, src=1, dst=0, length=100),
             Packet(ts=5.9, src=2, dst=0, length=100)]
        )
        pipeline = _pipeline(
            "spacesaving", EveryTraceSeconds(1.0), phi=0.5,
            emit_partial=False,
        )
        emissions = list(pipeline.process(TraceSource(trace), 16))
        assert len(emissions) == 5
        assert all(e.report == {} for e in emissions[1:4])  # the gap

    def test_rejects_bad_config(self):
        detector = get_spec("countmin-hh").factory()
        with pytest.raises(ValueError, match="phi"):
            StreamPipeline(detector, EveryNPackets(10), phi=0.0)
        with pytest.raises(ValueError, match="key"):
            StreamPipeline(detector, EveryNPackets(10), key="proto")
        pipeline = StreamPipeline(detector, EveryNPackets(10))
        with pytest.raises(ValueError, match="max_packets"):
            list(pipeline.process(TraceSource(build_trace("calm:duration=2")),
                                  64, max_packets=0))


def _run_uninterrupted(name, chunks, policy, **kwargs):
    pipeline = _pipeline(name, policy, phi=0.01, **kwargs)
    emissions = []
    for chunk in chunks:
        emissions.extend(pipeline.push(chunk))
    emissions.extend(pipeline.finish())
    return emissions, pipeline


def _run_resumed(name, chunks, split, make_policy, **kwargs):
    first = _pipeline(name, make_policy(), phi=0.01, **kwargs)
    emissions = []
    for chunk in chunks[:split]:
        emissions.extend(first.push(chunk))
    checkpoint = first.checkpoint()
    # Poison the original so any state sharing with the artifact shows up.
    for chunk in chunks[split:]:
        list(first.push(chunk))
    resumed = _pipeline(name, make_policy(), phi=0.01, **kwargs)
    resumed.restore(checkpoint)
    for chunk in chunks[split:]:
        emissions.extend(resumed.push(chunk))
    emissions.extend(resumed.finish())
    return emissions, resumed


class TestCheckpointResume:
    @pytest.mark.parametrize("name", ENUMERABLE)
    def test_resume_is_bit_identical_for_enumerable_detectors(
        self, name, trace
    ):
        chunks = list(TraceSource(trace).chunks(1024))
        expected, _ = _run_uninterrupted(name, chunks, WindowAligned(2.0))
        got, _ = _run_resumed(name, chunks, 4, lambda: WindowAligned(2.0))
        assert len(got) == len(expected)
        for a, b in zip(expected, got):
            assert (a.index, a.window, a.packets, a.bytes, a.start_packet,
                    a.end_packet, a.partial) == (
                b.index, b.window, b.packets, b.bytes, b.start_packet,
                b.end_packet, b.partial)
            assert a.report == b.report

    @pytest.mark.parametrize("name", MERGEABLE)
    def test_resume_matches_uninterrupted_state_for_mergeable_detectors(
        self, name, trace
    ):
        """Mergeable detectors are the sharded engine's combination units;
        their resumed stream state must equal the uninterrupted one
        exactly (estimates probed since some cannot enumerate)."""
        spec = get_spec(name)
        chunks = list(TraceSource(trace).chunks(1024))
        policy = EveryNPackets(10**9)  # ingest-only: compare final state
        _, uninterrupted = _run_uninterrupted(
            name, chunks, policy, emit_partial=False
        )
        _, resumed = _run_resumed(
            name, chunks, 4, lambda: EveryNPackets(10**9),
            emit_partial=False,
        )
        now = trace.end_time
        for key in np.unique(trace.src)[:32].tolist():
            assert spec.estimate(resumed.detector, key, now) == spec.estimate(
                uninterrupted.detector, key, now
            ), name

    def test_sharded_pipeline_resumes(self, trace):
        factory = get_spec("spacesaving").factory
        chunks = list(TraceSource(trace).chunks(2048))

        def build():
            return StreamPipeline(
                ShardedDetector(factory, 3), WindowAligned(2.0), phi=0.02
            )

        uninterrupted = build()
        expected = []
        for chunk in chunks:
            expected.extend(uninterrupted.push(chunk))

        first = build()
        got = []
        for chunk in chunks[:2]:
            got.extend(first.push(chunk))
        checkpoint = first.checkpoint()
        resumed = build()
        resumed.restore(checkpoint)
        for chunk in chunks[2:]:
            got.extend(resumed.push(chunk))

        assert [e.report for e in got] == [e.report for e in expected]

    def test_restore_rejects_mismatched_policy_or_schema(self, trace):
        pipeline = _pipeline("countmin-hh", WindowAligned(2.0))
        list(pipeline.process(TraceSource(trace), 4096))
        checkpoint = pipeline.checkpoint()

        other_policy = _pipeline("countmin-hh", WindowAligned(3.0))
        with pytest.raises(CheckpointError, match="policy"):
            other_policy.restore(checkpoint)
        fresh = _pipeline("countmin-hh", WindowAligned(2.0))
        with pytest.raises(CheckpointError, match="artifact"):
            fresh.restore({"schema": "bogus"})

    def test_checkpoint_is_picklable(self, trace):
        import pickle

        pipeline = _pipeline("countmin-hh", EveryTraceSeconds(2.0))
        list(pipeline.process(TraceSource(trace), 4096))
        blob = pickle.dumps(pipeline.checkpoint())
        fresh = _pipeline("countmin-hh", EveryTraceSeconds(2.0))
        fresh.restore(pickle.loads(blob))
        assert fresh.packets == pipeline.packets
        assert fresh.emissions == pipeline.emissions
