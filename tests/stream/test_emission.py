"""Emission policies: cut placement, state round-trips, parsing."""

import numpy as np
import pytest

from repro.stream import (
    EveryNPackets,
    EveryTraceSeconds,
    WindowAligned,
    parse_emission_policy,
)


class TestEveryNPackets:
    def test_cuts_every_n_across_chunks(self):
        policy = EveryNPackets(5)
        ts = np.arange(7, dtype=np.float64)
        assert policy.cuts(ts) == [(5, None)]
        # 2 packets carried over; next cut after 3 more.
        assert policy.cuts(ts) == [(3, None)]

    def test_multiple_cuts_in_one_chunk(self):
        policy = EveryNPackets(3)
        cuts = policy.cuts(np.arange(10, dtype=np.float64))
        assert cuts == [(3, None), (6, None), (9, None)]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EveryNPackets(0)

    def test_state_round_trip(self):
        policy = EveryNPackets(5)
        policy.cuts(np.arange(7, dtype=np.float64))  # 2 packets pending
        clone = EveryNPackets(5)
        clone.load_state_dict(policy.state_dict())
        ts = np.arange(10, dtype=np.float64)
        # The clone continues where the original left off (cut after the
        # 3 packets completing the pending 5, then after 5 more).
        assert clone.cuts(ts) == [(3, None), (8, None)]


class TestEveryTraceSeconds:
    def test_cut_positions_are_left_of_the_edge(self):
        policy = EveryTraceSeconds(1.0)
        policy.start(0.0)
        ts = np.asarray([0.2, 0.9, 1.0, 1.4, 2.3])
        # Edge 1.0: packets before it are [0.2, 0.9] -> position 2;
        # edge 2.0: [1.0, 1.4] -> position 4.
        assert policy.cuts(ts) == [(2, 1.0), (4, 2.0)]

    def test_edge_waits_for_a_packet_past_it(self):
        policy = EveryTraceSeconds(1.0)
        policy.start(0.0)
        assert policy.cuts(np.asarray([0.2, 0.8])) == []
        assert policy.cuts(np.asarray([2.5])) == [(0, 1.0), (0, 2.0)]

    def test_requires_start(self):
        with pytest.raises(RuntimeError, match="start"):
            EveryTraceSeconds(1.0).cuts(np.asarray([0.5]))

    def test_state_round_trip_continues_the_schedule(self):
        policy = EveryTraceSeconds(1.0)
        policy.start(0.0)
        policy.cuts(np.asarray([0.5, 1.2]))
        clone = EveryTraceSeconds(1.0)
        clone.load_state_dict(policy.state_dict())
        assert clone.cuts(np.asarray([2.7])) == [(0, 2.0)]


class TestWindowAligned:
    def test_matches_every_trace_seconds_edges(self):
        ts = np.sort(np.random.default_rng(3).uniform(0, 10, 300))
        a = EveryTraceSeconds(2.0)
        b = WindowAligned(2.0)
        a.start(float(ts[0]))
        b.start(float(ts[0]))
        assert a.cuts(ts) == b.cuts(ts)

    def test_restore_replays_the_exact_edge_sequence(self):
        ts = np.sort(np.random.default_rng(4).uniform(0, 20, 500))
        half = len(ts) // 2
        uninterrupted = WindowAligned(1.5)
        uninterrupted.start(float(ts[0]))
        first = uninterrupted.cuts(ts[:half])

        stopped = WindowAligned(1.5)
        stopped.start(float(ts[0]))
        assert stopped.cuts(ts[:half]) == first
        resumed = WindowAligned(1.5)
        resumed.load_state_dict(stopped.state_dict())
        # Bit-identical edges, not just approximately equal.
        assert resumed.cuts(ts[half:]) == uninterrupted.cuts(ts[half:])

    def test_describe_round_trips(self):
        policy = parse_emission_policy("window:2.5")
        assert isinstance(policy, WindowAligned)
        assert policy.describe() == "window:2.5"


class TestParsing:
    def test_spellings(self):
        assert isinstance(parse_emission_policy("5000p"), EveryNPackets)
        seconds = parse_emission_policy("2.5s")
        assert isinstance(seconds, EveryTraceSeconds)
        assert seconds.every_s == 2.5
        assert isinstance(parse_emission_policy("window:10"), WindowAligned)

    def test_describe_round_trips(self):
        for text in ("5000p", "2.5s", "window:10"):
            rebuilt = parse_emission_policy(
                parse_emission_policy(text).describe()
            )
            assert type(rebuilt) is type(parse_emission_policy(text))

    def test_bad_spellings_rejected(self):
        for bad in ("", "10", "p", "-5p", "0p", "0s", "window:", "10x"):
            with pytest.raises(ValueError):
                parse_emission_policy(bad)
