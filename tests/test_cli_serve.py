"""The ``repro-hhh serve`` subcommand: multi-tenant emissions, per-tenant
checkpoint directories, resume with fast-forward, and the JSON artifact."""

import json

import pytest

from repro.cli import main
from repro.experiments import validate_result_dict

SPEC_A = "drift:duration=8,seed=1"
SPEC_B = "zipf:duration=8,seed=5"


def _run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestServeCommand:
    def test_multi_tenant_emissions_print(self, capsys):
        code, out = _run(
            capsys, "serve",
            "--tenant", f"a={SPEC_A}", "--tenant", f"b={SPEC_B}",
            "--workers", "2", "--shards", "2", "--chunk", "2048",
            "--emit-every", "2s", "--max-packets", "6000",
        )
        assert code == 0
        assert "a " in out and "b " in out
        assert "emit" in out
        assert "a: 6000 packets" in out
        assert "b: 6000 packets" in out

    def test_json_artifact_validates(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        code, _ = _run(
            capsys, "serve", "--tenant", f"a={SPEC_A}",
            "--chunk", "2048", "--max-packets", "4000",
            "--json", str(out_path),
        )
        assert code == 0
        document = json.loads(out_path.read_text())
        validate_result_dict(document)
        assert document["experiment"] == "serve"
        assert document["headline"]["tenants"] == 1
        assert document["headline"]["failed"] == 0
        assert all(row["tenant"] == "a" for row in document["rows"])

    def test_checkpoint_then_resume_continues(self, capsys, tmp_path):
        ckpt = tmp_path / "ckpts"
        code, out = _run(
            capsys, "serve",
            "--tenant", f"a={SPEC_A}", "--tenant", f"b={SPEC_B}",
            "--chunk", "2048", "--max-packets", "4000",
            "--checkpoint-dir", str(ckpt),
        )
        assert code == 0
        assert (ckpt / "a.ckpt").exists() and (ckpt / "b.ckpt").exists()
        # A checkpointed run holds the open interval: no partial reports.
        assert "partial" not in out

        code, out = _run(
            capsys, "serve",
            "--tenant", f"a={SPEC_A}", "--tenant", f"b={SPEC_B}",
            "--chunk", "2048", "--max-packets", "8000",
            "--resume-dir", str(ckpt), "--fast-forward",
        )
        assert code == 0
        assert "a: resumed at packet 4000" in out
        assert "b: resumed at packet 4000" in out

    def test_rejects_malformed_tenants(self, capsys):
        code, _ = _run(capsys, "serve", "--tenant", "nospec")
        assert code == 2
        code, _ = _run(
            capsys, "serve",
            "--tenant", f"a={SPEC_A}", "--tenant", f"a={SPEC_B}",
        )
        assert code == 2

    def test_rejects_unknown_detector(self, capsys):
        code, _ = _run(
            capsys, "serve", "--tenant", f"a={SPEC_A}",
            "--detector", "countmin",
        )
        assert code == 2

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--tenant", "a=drift:duration=4"]
        )
        assert args.workers == 1
        assert args.shards is None
        assert args.chunk == 8192
        assert args.emit_every == "2s"
        assert args.detector == "countmin-hh"
        assert args.checkpoint_every is None
        assert args.recover is True


class TestCrashSupervision:
    def test_checkpoint_every_run_reports_zero_recoveries(
        self, capsys, tmp_path
    ):
        """A supervised run with auto-checkpoints on and no crash: clean
        exit, ``recoveries: 0`` in the artifact headline."""
        out_path = tmp_path / "serve.json"
        code, out = _run(
            capsys, "serve", "--tenant", f"a={SPEC_A}",
            "--workers", "2", "--shards", "2",
            "--chunk", "2048", "--max-packets", "6000",
            "--checkpoint-every", "1", "--json", str(out_path),
        )
        assert code == 0
        assert "recovered" not in out   # only printed after actual crashes
        document = json.loads(out_path.read_text())
        assert document["headline"]["recoveries"] == 0
        assert document["headline"]["failed"] == 0

    def test_no_recover_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--tenant", "a=drift:duration=4", "--no-recover",
             "--checkpoint-every", "3"]
        )
        assert args.recover is False
        assert args.checkpoint_every == 3

    def test_checkpoint_every_must_be_positive(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--tenant", "a=drift:duration=4",
                 "--checkpoint-every", "0"]
            )
        capsys.readouterr()
