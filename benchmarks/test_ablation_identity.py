"""Ablation: hidden-HHH accounting convention (DESIGN.md call-out).

Figure 2's number depends on what counts as "one HHH": a unique prefix
over the whole trace, or one per-window detection occurrence.  This bench
runs both conventions on the same trace so EXPERIMENTS.md can report the
sensitivity of the headline number to the convention.
"""

from benchmarks.conftest import write_result
from repro.analysis import HiddenHHHExperiment
from repro.analysis.render import format_table


def run_both(trace):
    rows = []
    for mode in ("unique", "occurrences"):
        experiment = HiddenHHHExperiment(
            window_sizes=(5.0, 10.0), thresholds=(0.01, 0.05), mode=mode
        )
        for row in experiment.run(trace, label=mode).rows:
            rows.append(row)
    return rows


def test_ablation_identity_convention(benchmark, sec3_trace):
    rows = benchmark.pedantic(
        run_both, args=(sec3_trace,), rounds=1, iterations=1
    )
    write_result(
        "ablation_identity.txt",
        format_table([r.to_dict() for r in rows]),
    )
    unique = [r for r in rows if r.mode == "unique"]
    occurrences = [r for r in rows if r.mode == "occurrences"]
    # Both conventions must exhibit the effect...
    assert any(r.hidden_percent > 5.0 for r in unique)
    assert any(r.hidden > 0 for r in occurrences)
    # ...and occurrence accounting has (far) larger totals by definition.
    assert sum(r.total for r in occurrences) > sum(r.total for r in unique)
