"""Batch vs scalar update throughput (the ISSUE's acceptance gate).

Two detector families, two gates:

- array-backed sketches (Count-Min, TDBF, ...) stream the 20k-packet
  throughput trace and must clear >= 5x batch-over-scalar;
- the pointer-based family (Space-Saving and friends) streams a ~114k
  packet trace through the flat-table batch-admission path and must clear
  >= 10x at production sizing (tables provisioned above the trace's
  distinct-key count, so admission stays eviction-free).

Each detector is timed twice — once per packet through scalar ``update``,
once as a single columnar ``update_batch`` call — and both tables land in
``benchmarks/results/batch_throughput.txt``.
"""

from __future__ import annotations

from benchmarks.conftest import write_result

from repro.analysis.render import format_table
from repro.analysis.throughput import speedup_row, trace_columns

#: (registry name, factory kwargs, required speedup).
SKETCH_CASES = [
    ("countmin", {}, 5.0),
    ("ondemand-tdbf", {"cells": 4096}, 5.0),
    ("countsketch", {}, 5.0),
    ("counting-bloom", {}, 5.0),
    ("decayed-countmin", {}, 5.0),
]

#: Pointer-based detectors at production sizing (>= 10x gate).  The trace
#: holds ~3.5k distinct keys, so 8k-counter tables keep the batch path on
#: its vectorized eviction-free fast path — the deployment regime the
#: amortized admission design targets.
POINTER_CASES = [
    ("spacesaving", {"capacity": 8192}, 10.0),
    ("misragries", {"capacity": 8192}, 10.0),
    ("hashpipe", {"stage_slots": 65536}, 10.0),
    ("rhhh", {"counters_per_level": 8192}, 10.0),
    ("univmon", {"levels": 8, "width": 8192, "rows": 3, "top_k": 8192}, 10.0),
    ("decayed-spacesaving", {"capacity": 8192}, 10.0),
    ("sliding-spacesaving",
     {"window": 60.0, "capacity_per_bucket": 8192}, 10.0),
    ("td-hhh", {"counters_per_level": 8192}, 10.0),
]


def _run_cases(cases, columns):
    rows = []
    failures = []
    for name, kwargs, required in cases:
        row = speedup_row(name, columns, **kwargs)
        row["required"] = required
        rows.append(row)
        if row["speedup"] < required:
            failures.append(f"{name}: {row['speedup']}x < {required}x")
    return rows, failures


def test_batch_vs_scalar_throughput(throughput_trace, batch_trace):
    sketch_rows, failures = _run_cases(
        SKETCH_CASES, trace_columns(throughput_trace)
    )
    pointer_rows, pointer_failures = _run_cases(
        POINTER_CASES, trace_columns(batch_trace, limit=200_000)
    )
    failures += pointer_failures
    write_result(
        "batch_throughput.txt",
        "Batch vs scalar update throughput\n\n"
        "Array-backed sketches (20k-packet trace)\n"
        + format_table(sketch_rows)
        + "\n\nPointer-based detectors (114k-packet trace, batch admission)\n"
        + format_table(pointer_rows),
    )
    assert not failures, "; ".join(failures)
