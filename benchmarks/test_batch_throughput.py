"""Batch vs scalar update throughput (the ISSUE's acceptance gate).

Streams the same 20k-packet throughput trace through each detector twice —
once per packet through scalar ``update``, once as one columnar
``update_batch`` call — and records packets/second for both.  The
vectorized structures named by the acceptance criteria (Count-Min and the
on-demand TDBF) must clear a >= 5x speedup; in practice the margin is well
over an order of magnitude, so the assertion is timing-noise safe.
"""

from __future__ import annotations

from benchmarks.conftest import write_result

from repro.analysis.render import format_table
from repro.analysis.throughput import speedup_row, trace_columns

#: (registry name, factory kwargs, required speedup or None).
CASES = [
    ("countmin", {}, 5.0),
    ("ondemand-tdbf", {"cells": 4096}, 5.0),
    ("countsketch", {}, 5.0),
    ("counting-bloom", {}, 5.0),
    ("decayed-countmin", {}, 5.0),
    ("spacesaving", {}, None),  # scalar replay: parity, not speedup
]


def test_batch_vs_scalar_throughput(throughput_trace):
    columns = trace_columns(throughput_trace)
    rows = []
    failures = []
    for name, kwargs, required in CASES:
        row = speedup_row(name, columns, **kwargs)
        row["required"] = required if required is not None else "-"
        rows.append(row)
        if required is not None and row["speedup"] < required:
            failures.append(f"{name}: {row['speedup']}x < {required}x")
    write_result(
        "batch_throughput.txt",
        "Batch vs scalar update throughput (20k-packet trace)\n"
        + format_table(rows),
    )
    assert not failures, "; ".join(failures)
