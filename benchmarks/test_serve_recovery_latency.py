"""Serve-engine crash-recovery latency (the ISSUE 10 supervision path).

Streams a small tenant fleet through the supervised runtime, SIGKILLs one
worker mid-run, and records what the recovery machinery costs:

- ``recovery_s`` — respawn + checkpoint-restore time, straight from
  :attr:`ServeRuntime.recoveries` (the replay that follows runs at normal
  streaming speed inside ``run()`` and is charged to the run, not the
  recovery);
- the end-to-end overhead of the crashed run vs an identical clean run,
  which bounds checkpoint cadence + replay cost together.

The run must also stay *correct*: every tenant's emission stream is
compared byte-identically against the clean run's.  Count-Min again, so
the numbers measure the engine, not detector variance.
"""

from __future__ import annotations

import dataclasses
import time

from benchmarks.conftest import write_result

from repro.analysis.render import format_table
from repro.stream.serve import ServeRuntime

WORKERS = 2
SHARDS = 4
CHUNK = 4096
MAX_PACKETS = 60_000
CHECKPOINT_EVERY = 1
KILL_TURN = 8
#: Generous absolute bound on respawn + state-restore time; the committed
#: perf ceiling (benchmarks/perf_floors.json) gates the smoke artifact at
#: the same 5s.
MAX_RECOVERY_S = 5.0

TENANTS = {
    "alpha": "drift:duration=30,seed=3",
    "beta": "zipf:duration=30,seed=9",
    "gamma": "caida:day=0,duration=30",
}


def _run_fleet(kill_turn=None):
    """One full fleet run; returns (emissions, wall_s, recoveries)."""
    with ServeRuntime(
        workers=WORKERS, shards=SHARDS, chunk_size=CHUNK
    ) as runtime:
        for name, spec in TENANTS.items():
            runtime.add_tenant(
                name, "countmin-hh", spec, emit="2s", phi=0.02,
                max_packets=MAX_PACKETS,
                checkpoint_every=CHECKPOINT_EVERY,
            )
        if kill_turn is not None:
            runtime.on_turn = (
                lambda turn: runtime.pool.kill_worker(0)
                if turn == kill_turn else None
            )
        t0 = time.perf_counter()
        emissions = {name: [] for name in TENANTS}
        for name, emission in runtime.run():
            emissions[name].append(
                dataclasses.replace(emission, wall_s=0.0)
            )
        wall_s = time.perf_counter() - t0
        assert not runtime.failed, runtime.failed
        recoveries = list(runtime.recoveries)
    return emissions, wall_s, recoveries


def test_crash_recovery_latency():
    clean, clean_s, none = _run_fleet()
    assert not none
    crashed, crashed_s, recoveries = _run_fleet(kill_turn=KILL_TURN)

    assert len(recoveries) == 1
    assert recoveries[0]["failed"] == ()
    recovery_s = float(recoveries[0]["seconds"])
    # Correctness first: the crash must be observationally invisible.
    assert crashed == clean

    write_result(
        "serve_recovery.txt",
        "Serve-engine crash recovery (countmin-hh, "
        f"{len(TENANTS)} tenants, {WORKERS} workers, {SHARDS} shards, "
        f"chunk {CHUNK}, checkpoint every {CHECKPOINT_EVERY} emission)\n"
        + format_table([{
            "packets_per_tenant": MAX_PACKETS,
            "clean_run_s": round(clean_s, 3),
            "crashed_run_s": round(crashed_s, 3),
            "recovery_s": round(recovery_s, 4),
            "overhead": round(crashed_s / clean_s, 2),
        }]),
    )
    assert recovery_s < MAX_RECOVERY_S, (
        f"respawn + restore took {recovery_s:.2f}s "
        f"(bound {MAX_RECOVERY_S}s)"
    )
