"""Section 3 regeneration: time-decaying vs disjoint-window detection.

The comparison the poster commits to ("performance, resource utilization
and result's accuracy"): exact/disjoint, RHHH/disjoint, per-level
Space-Saving/disjoint against the windowless time-decaying HHH detector,
scored against sliding-window exact ground truth.

Expected shape: the time-decaying detector recovers most of the hidden
occurrences (the disjoint-exact reference recovers none by construction)
at comparable counter budgets and pipeline stages.
"""

from benchmarks.conftest import write_result
from repro.analysis import DecayComparisonExperiment


def run_sec3(trace):
    experiment = DecayComparisonExperiment(
        window_size=10.0, phi=0.05, step=1.0, counters_per_level=128
    )
    return experiment.run(trace)


def test_sec3_decay_comparison(benchmark, sec3_trace):
    result = benchmark.pedantic(
        run_sec3, args=(sec3_trace,), rounds=1, iterations=1
    )
    write_result(
        "sec3_decay_comparison.txt",
        f"truth occurrences: {result.num_truth_occurrences}, "
        f"hidden: {result.num_hidden_occurrences}\n" + result.to_table(),
    )

    exact = result.score_for("disjoint-exact")
    td = result.score_for("td-hhh")
    # Disjoint-exact misses the hidden set by construction.
    assert exact.hidden_recall == 0.0
    # The windowless detector recovers a substantial part of it.
    if result.num_hidden_occurrences:
        assert td.hidden_recall >= 0.3
        assert td.hidden_recall > exact.hidden_recall
    # Accuracy on the full truth stays competitive.
    assert td.occurrence_recall >= 0.5
    # Resource story: no window reset, bounded counters.
    assert not td.window_reset
    assert exact.window_reset
    assert td.counters <= 128 * 5 + 1
