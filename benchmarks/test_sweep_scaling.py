"""Sweep-engine throughput: cells/second vs worker count.

The sweep engine packages whole experiment cells as the unit of parallel
work; this benchmark records how cell throughput scales when the same
grid fans out over a process pool.  Cells here are deliberately uniform
and compute-bound (detector-accuracy over mid-size traces) so the ratio
measures the engine's fan-out, not cell skew.  No timing gate — shared
runners are too noisy for that — but the recorded table is the reference
trajectory, and every configuration must complete all cells ok.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import write_result

from repro.analysis.render import format_table
from repro.sweep import SweepRunner

GRID = (
    "exp=detector-accuracy;"
    "trace=zipf:duration=20,ddos-burst:duration=20,calm:duration=20,"
    "flash-crowd:duration=20;"
    "detector=countmin-hh,spacesaving,misragries;phi=0.01"
)

WORKER_COUNTS = (1, 2, 4)


def _measure(workers: int):
    backend = "serial" if workers == 1 else "process"
    with SweepRunner(backend, workers) as runner:
        # Warm the pool (fork + imports) so the measured pass prices cell
        # execution, not interpreter start-up.
        if backend == "process":
            runner.run("exp=trace-stats;trace=zipf:duration=2")
        result = runner.run(GRID)
    assert result.num_errors == 0, [
        cell.error for cell in result.cells if cell.status == "error"
    ]
    return result


def test_cells_per_second_vs_workers():
    rows = []
    base = None
    for workers in WORKER_COUNTS:
        if workers > (os.cpu_count() or 1):
            continue
        result = _measure(workers)
        pace = result.timings["cells_per_s"]
        base = base or pace
        rows.append({
            "workers": workers,
            "backend": result.backend,
            "cells": result.num_cells,
            "total_s": result.timings["total_s"],
            "cells_per_s": pace,
            "vs_serial": round(pace / base, 2),
        })
    write_result(
        "sweep_scaling.txt",
        "Sweep-engine cell throughput by worker count "
        "(detector-accuracy grid, 12 cells)\n" + format_table(rows),
    )
    assert rows, "no configuration fit this machine"
    assert all(row["cells"] == 12 for row in rows)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2, reason="needs >= 2 cores to exercise the pool"
)
def test_process_backend_matches_serial_results():
    """Fan-out must not change what the cells compute: serial and process
    sweeps of the same grid produce identical rows."""
    serial = _measure(1)
    parallel = _measure(2)
    for s_cell, p_cell in zip(serial.cells, parallel.cells):
        assert s_cell.rows == p_cell.rows
        assert s_cell.headline == p_cell.headline
