"""Ablation: hierarchy granularity, byte (/8 steps) vs bit (DESIGN.md
call-out).

The paper uses the conventional byte hierarchy.  Bit granularity multiplies
the level count by 8 and therefore both the HHH population and the exact
computation cost; the hidden-HHH effect must survive the change.
"""

from benchmarks.conftest import write_result
from repro.analysis import HiddenHHHExperiment
from repro.analysis.render import format_table
from repro.hierarchy.domain import SourceHierarchy


def run_granularity(trace, granularity):
    experiment = HiddenHHHExperiment(
        window_sizes=(5.0,),
        thresholds=(0.05,),
        hierarchy=SourceHierarchy(granularity),
    )
    return experiment.run(trace, label=granularity)


def test_ablation_granularity(benchmark, sec3_trace):
    def run():
        return (
            run_granularity(sec3_trace, "byte"),
            run_granularity(sec3_trace, "bit"),
        )

    byte_result, bit_result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [r.to_dict() for r in byte_result.rows + bit_result.rows]
    write_result("ablation_granularity.txt", format_table(rows))

    byte_row = byte_result.rows[0]
    bit_row = bit_result.rows[0]
    # Bit granularity can only refine detections: at least as many unique
    # HHHs as the byte hierarchy finds aggregates for.
    assert bit_row.total >= byte_row.total
    # The hidden effect is present in both.
    assert byte_row.hidden_percent > 0.0
    assert bit_row.hidden_percent > 0.0
