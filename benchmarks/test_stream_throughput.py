"""Streaming vs offline ingest throughput (the ISSUE's acceptance gate).

The streaming pipeline re-chunks the stream into fixed 8192-packet
columnar chunks and pays per-chunk slicing, policy, and bookkeeping
overhead on top of the same vectorized ``update_batch`` calls the offline
path makes once over the whole column set.  The gate: chunked streaming
must sustain **>= 0.7x** of the offline batch path's packets/second for
the vectorized Count-Min — the detector where chunking overhead is the
largest *relative* cost — and for the Count-Min heavy-hitter tracker,
whose batch path simulates per-packet threshold crossings vectorized.
The tracker must additionally stay within **5x** of plain Count-Min's
streaming rate (the cost of candidate tracking on top of the sketch).
"""

from __future__ import annotations

import time

from benchmarks.conftest import write_result

from repro.analysis.render import format_table
from repro.core import get_spec
from repro.stream import EveryNPackets, StreamPipeline, TraceSource
from repro.trace import presets

CHUNK = 8192
#: Best-of-N: the vectorized offline path finishes the whole trace in a
#: few ms, so a handful of repeats is needed before the minimum settles.
REPEATS = 5
REQUIRED_RATIO = 0.7

#: Candidate tracking may cost at most this much streaming throughput
#: relative to the plain sketch.
MAX_HH_SLOWDOWN = 5.0

#: (registry name, required streaming/offline ratio).
CASES = [
    ("countmin", REQUIRED_RATIO),     # vectorized: worst case for chunking
    ("countmin-hh", REQUIRED_RATIO),  # vectorized crossing simulation
]


def _offline_seconds(spec, trace) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        detector = spec.factory()
        t0 = time.perf_counter()
        detector.update_batch(trace.src, trace.length, trace.ts)
        best = min(best, time.perf_counter() - t0)
    return best


def _streaming_seconds(spec, trace) -> float:
    """End-to-end pipeline wall time: chunking + policy + updates."""
    best = float("inf")
    for _ in range(REPEATS):
        pipeline = StreamPipeline(
            spec.factory(),
            EveryNPackets(10**12),  # ingest-only: measure the chunked path
            timestamped=spec.timestamped,
            emit_partial=False,
        )
        t0 = time.perf_counter()
        for _emission in pipeline.process(TraceSource(trace), CHUNK):
            pass
        best = min(best, time.perf_counter() - t0)
    return best


def test_streaming_sustains_offline_throughput():
    trace = presets.caida_like_day(0, duration=40.0)
    rows = []
    failures = []
    streaming_pps: dict[str, float] = {}
    for name, required in CASES:
        spec = get_spec(name)
        offline_s = _offline_seconds(spec, trace)
        streaming_s = _streaming_seconds(spec, trace)
        ratio = offline_s / streaming_s
        streaming_pps[name] = len(trace) / streaming_s
        rows.append({
            "detector": name,
            "packets": len(trace),
            "chunk": CHUNK,
            "offline_pps": int(len(trace) / offline_s),
            "streaming_pps": int(len(trace) / streaming_s),
            "ratio": round(ratio, 2),
            "required": required,
        })
        if ratio < required:
            failures.append(f"{name}: {ratio:.2f}x < {required}x")
    slowdown = streaming_pps["countmin"] / streaming_pps["countmin-hh"]
    if slowdown > MAX_HH_SLOWDOWN:
        failures.append(
            f"countmin-hh streaming is {slowdown:.1f}x slower than countmin "
            f"(limit {MAX_HH_SLOWDOWN}x)"
        )
    write_result(
        "stream_throughput.txt",
        f"Chunked streaming vs offline batch ingest (chunk={CHUNK})\n"
        + format_table(rows),
    )
    assert not failures, "; ".join(failures)
