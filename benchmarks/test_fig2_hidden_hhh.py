"""Figure 2 regeneration: percentage of hidden HHHs.

Paper series: window sizes {5, 10, 20} s x thresholds {1%, 5%, 10%},
sliding step 1 s, over four days of traffic.  Expected shape: hidden HHHs
are a substantial fraction everywhere (paper: up to 34%; 24-34% at the 1%
threshold, 18-24% at 5%).
"""

from benchmarks.conftest import write_result
from repro.analysis import HiddenHHHExperiment


def run_fig2(traces):
    experiment = HiddenHHHExperiment(
        window_sizes=(5.0, 10.0, 20.0),
        thresholds=(0.01, 0.05, 0.10),
        step=1.0,
    )
    return experiment.run_days(traces)


def test_fig2_hidden_hhh(benchmark, fig2_traces):
    result = benchmark.pedantic(
        run_fig2, args=(fig2_traces,), rounds=1, iterations=1
    )
    write_result(
        "fig2_hidden_hhh.txt",
        result.to_table()
        + f"\n\nmax hidden: {result.max_hidden_percent():.1f}% "
        "(paper: up to 34%)",
    )

    # Shape assertions (who wins / rough magnitude, not absolute numbers).
    assert 10.0 <= result.max_hidden_percent() <= 70.0
    # Hidden HHHs exist at every window size (pooled over days/thresholds).
    for window in (5.0, 10.0, 20.0):
        rows = result.rows_for(window_size=window)
        pooled_total = sum(r.total for r in rows)
        pooled_hidden = sum(r.hidden for r in rows)
        assert pooled_hidden / pooled_total > 0.05
    # And at every threshold.
    for phi in (0.01, 0.05, 0.10):
        rows = result.rows_for(phi=phi)
        pooled = sum(r.hidden for r in rows) / max(1, sum(r.total for r in rows))
        assert pooled > 0.05
