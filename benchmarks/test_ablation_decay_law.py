"""Ablation: decay law in the windowless detector (DESIGN.md call-out).

Bianchi et al.'s original TDBF decays linearly; the exponential law makes
the decayed volume an EWMA directly comparable to a trailing window.  This
bench scores both laws (and a sliding-expiry law) in the Section 3 setup.
"""

from benchmarks.conftest import write_result
from repro.analysis.decay_experiment import (
    DecayComparisonExperiment,
    _score_series,
)
from repro.analysis.render import format_table
from repro.decay.laws import ExponentialDecay, LinearDecay
from repro.windows.disjoint import DisjointWindows
from repro.windows.sliding import SlidingWindows

WINDOW = 10.0
PHI = 0.05


def run_laws(trace):
    experiment = DecayComparisonExperiment(
        window_size=WINDOW, phi=PHI, counters_per_level=128
    )
    sliding = list(SlidingWindows(WINDOW, 1.0).over_trace(trace))
    disjoint = list(DisjointWindows(WINDOW).over_trace(trace))
    truth = experiment._exact_series(trace, sliding)
    disjoint_exact = experiment._exact_series(trace, disjoint)
    hidden = set()
    from repro.analysis.decay_experiment import _covered

    for window, prefixes in truth:
        for prefix in prefixes:
            if not _covered(disjoint_exact, window, prefix):
                hidden.add((window.index, prefix))

    # Average rate so LinearDecay drains a window's volume in ~WINDOW s.
    rate = trace.total_bytes / max(trace.duration, 1e-9)
    laws = {
        "exponential(tau=W)": ExponentialDecay(tau=WINDOW),
        "linear(rate=avg)": LinearDecay(rate=rate),
    }
    rows = []
    for name, law in laws.items():
        exp = DecayComparisonExperiment(
            window_size=WINDOW, phi=PHI, counters_per_level=128
        )
        # Swap the law by monkey-free reconstruction of the TD series.
        from repro.decay.td_hhh import TimeDecayingHHH
        from repro.windows.schedule import Window

        detector = TimeDecayingHHH(law=law, counters_per_level=128)
        series = []
        next_query = trace.start_time + WINDOW
        index = 0
        ts, src, length = trace.ts, trace.src, trace.length
        for p in range(len(trace)):
            now = float(ts[p])
            while now >= next_query:
                result = detector.query(PHI, next_query)
                series.append(
                    (Window(next_query - WINDOW, next_query, index),
                     result.prefixes)
                )
                index += 1
                next_query += 1.0
            detector.update(int(src[p]), int(length[p]), now)
        recall, precision, hidden_recall = _score_series(truth, hidden, series)
        rows.append(
            {
                "law": name,
                "recall": round(recall, 3),
                "precision": round(precision, 3),
                "hidden_recall": round(hidden_recall, 3),
            }
        )
    return rows


def test_ablation_decay_law(benchmark, sec3_trace):
    rows = benchmark.pedantic(run_laws, args=(sec3_trace,), rounds=1,
                              iterations=1)
    write_result("ablation_decay_law.txt", format_table(rows))
    by_law = {r["law"]: r for r in rows}
    # The ablation's finding: the exponential law (whose decayed volume is
    # an EWMA directly calibrated to the window) is the right choice; the
    # average-rate linear law drains bursty aggregates too aggressively.
    exp_row = by_law["exponential(tau=W)"]
    lin_row = by_law["linear(rate=avg)"]
    assert exp_row["recall"] >= 0.5
    assert exp_row["hidden_recall"] >= 0.3
    assert exp_row["recall"] > lin_row["recall"]
