"""Ablation / negative control: the hidden-HHH effect needs burstiness.

With episodes, bursts and churn switched off (a stationary Poisson mix),
disjoint windows hide far less — confirming the paper's diagnosis that the
hidden information is created by traffic dynamics interacting with the
window grid, not by the metric itself.
"""

from benchmarks.conftest import write_result
from repro.analysis import HiddenHHHExperiment
from repro.analysis.render import format_table
from repro.trace import presets


def run_control():
    bursty = presets.caida_like_day(0, duration=60.0)
    calm = presets.calm_trace(duration=60.0)
    experiment = HiddenHHHExperiment(window_sizes=(10.0,), thresholds=(0.05,))
    rows = []
    rows.extend(experiment.run(bursty, "bursty").rows)
    rows.extend(experiment.run(calm, "calm").rows)
    return rows


def test_ablation_burstiness_control(benchmark):
    rows = benchmark.pedantic(run_control, rounds=1, iterations=1)
    write_result(
        "ablation_burstiness.txt",
        format_table([r.to_dict() for r in rows]),
    )
    bursty = next(r for r in rows if r.label == "bursty")
    calm = next(r for r in rows if r.label == "calm")
    assert bursty.hidden_percent >= calm.hidden_percent
    assert bursty.hidden_percent > 10.0
