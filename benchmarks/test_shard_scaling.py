"""Sharded-engine throughput (the ISSUE's parallel acceptance gate).

Feeds one large columnar batch through a 4-shard key-partitioned
Count-Min on the process backend twice — once with 1 worker, once with 4
— and requires the 4-worker pool to clear a >= 1.8x speedup.  Holding
the backend fixed makes the ratio measure parallel fan-out alone: both
sides pay identical per-shard serialization and child-execution costs
(measured ~5 ms transport for ~4 MB of columns vs tens of ms of numpy
work per shard), so the 1-worker makespan is the *sum* of shard updates
and the 4-worker makespan is their *max*.  The gate only runs on a
multi-core machine (the CI benchmark runners have 4 vCPUs); the serial
shard sweep below runs everywhere as the recorded reference table.

Count-Min is the array-backed detector named by the acceptance criteria:
its per-shard ``update_batch`` is one vectorized hash + ``np.add.at``
scatter per row, all single-threaded numpy, so shard fan-out is the only
parallelism available and the speedup measures the engine, not BLAS.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import write_result

from repro.analysis.render import format_table
from repro.analysis.throughput import trace_columns
from repro.core import make_detector
from repro.engine import ParallelRunner, ShardedDetector, partition_batch
from repro.trace import presets

REQUIRED_SPEEDUP = 1.8
MAX_SINGLE_SHARD_OVERHEAD = 0.05
NUM_SHARDS = 4
WORKERS = 4
REPEATS = 3


@pytest.fixture(scope="module")
def big_columns():
    """A few hundred thousand packets: large enough that per-shard work
    dwarfs the per-call detector-state round-trip.  The timestamp column
    is dropped — Count-Min ignores it, so shipping it would only pad the
    per-shard payloads."""
    trace = presets.caida_like_day(0, duration=300.0)
    keys, weights, _ = trace_columns(trace, limit=400_000)
    return keys, weights


def _measure(columns, num_shards: int, runner: ParallelRunner | None,
             repeats: int = REPEATS) -> float:
    keys, weights = columns
    best = float("inf")
    for _ in range(repeats):
        detector = ShardedDetector(
            lambda: make_detector("countmin"), num_shards, runner
        )
        t0 = time.perf_counter()
        detector.update_batch(keys, weights)
        best = min(best, time.perf_counter() - t0)
    return best


def _warm(runner: ParallelRunner, columns) -> None:
    """Spin the pool up (fork + imports) outside every timed region."""
    keys, weights = columns
    detector = ShardedDetector(
        lambda: make_detector("countmin"), NUM_SHARDS, runner
    )
    detector.update_batch(keys[:1000], weights[:1000])


def _stage_times(columns, num_shards: int) -> tuple[float, float]:
    """One instrumented pass: (partition seconds, per-shard update seconds).

    Separate from :func:`_measure` so the best-of-N totals stay clean;
    this is the split that shows whether shard count taxes the routing
    stage or the detector work."""
    keys, weights = columns
    t0 = time.perf_counter()
    parts = partition_batch(keys, weights, None, num_shards)
    partition_s = time.perf_counter() - t0
    detector = ShardedDetector(lambda: make_detector("countmin"), num_shards)
    t0 = time.perf_counter()
    for shard, (part_keys, part_weights, part_ts) in zip(
        detector.shards, parts
    ):
        if len(part_keys):
            shard.update_batch(part_keys, part_weights, part_ts)
    return partition_s, time.perf_counter() - t0


def test_serial_shard_sweep(big_columns):
    """Reference table: serial-backend throughput is flat in shard count
    (partitioning costs little; parallelism is what the pool adds)."""
    n = len(big_columns[0])
    rows = []
    base = None
    for num_shards in (1, 2, 4):
        seconds = _measure(big_columns, num_shards, runner=None)
        partition_s, update_s = _stage_times(big_columns, num_shards)
        base = base or seconds
        rows.append({
            "shards": num_shards,
            "backend": "serial",
            "packets": n,
            "pps": int(n / seconds),
            "vs_1_shard": round(base / seconds, 2),
            "partition_ms": round(partition_s * 1000, 2),
            "update_ms": round(update_s * 1000, 2),
        })
    write_result(
        "shard_scaling_serial.txt",
        "Serial sharded-engine throughput by shard count (countmin)\n"
        + format_table(rows),
    )
    # Partitioning overhead must not halve throughput at 4 shards.
    assert rows[-1]["vs_1_shard"] > 0.5


def test_single_shard_overhead(big_columns):
    """The degenerate ``shards=1`` wrapper must cost <= 5% vs the bare
    detector — it bypasses routing entirely, so the only residue is one
    attribute hop per batch."""
    keys, weights = big_columns
    n = len(keys)

    def bare_seconds() -> float:
        detector = make_detector("countmin")
        t0 = time.perf_counter()
        detector.update_batch(keys, weights)
        return time.perf_counter() - t0

    bare = min(bare_seconds() for _ in range(REPEATS + 2))
    sharded = _measure(big_columns, 1, runner=None, repeats=REPEATS + 2)
    overhead = sharded / bare - 1.0
    write_result(
        "shard_single_overhead.txt",
        "Single-shard wrapper overhead vs bare detector (countmin)\n"
        + format_table([{
            "packets": n,
            "pps_bare": int(n / bare),
            "pps_1_shard": int(n / sharded),
            "overhead_percent": round(overhead * 100, 2),
            "max_percent": MAX_SINGLE_SHARD_OVERHEAD * 100,
        }]),
    )
    assert overhead <= MAX_SINGLE_SHARD_OVERHEAD, (
        f"shards=1 overhead {overhead:.1%} > "
        f"{MAX_SINGLE_SHARD_OVERHEAD:.0%} vs the bare detector"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"needs >= {WORKERS} cores for the parallel speedup gate",
)
def test_process_pool_speedup_gate(big_columns):
    n = len(big_columns[0])
    with ParallelRunner("process", workers=1) as runner:
        _warm(runner, big_columns)
        one_worker_s = _measure(big_columns, NUM_SHARDS, runner)
    with ParallelRunner("process", workers=WORKERS) as runner:
        _warm(runner, big_columns)
        four_worker_s = _measure(big_columns, NUM_SHARDS, runner)
    speedup = one_worker_s / four_worker_s
    write_result(
        "shard_scaling_parallel.txt",
        "Process-pool sharded-engine throughput (countmin, "
        f"{NUM_SHARDS} shards, {WORKERS} vs 1 workers)\n"
        + format_table([{
            "packets": n,
            "pps_1_worker": int(n / one_worker_s),
            f"pps_{WORKERS}_workers": int(n / four_worker_s),
            "speedup": round(speedup, 2),
            "required": REQUIRED_SPEEDUP,
        }]),
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"process pool speedup {speedup:.2f}x < {REQUIRED_SPEEDUP}x "
        f"at {WORKERS} workers vs 1"
    )
