"""Sharded-engine throughput (the ISSUE's parallel acceptance gate).

Feeds one large columnar batch through a 4-shard key-partitioned
Count-Min on the process backend twice — once with 1 worker, once with 4
— and requires the 4-worker pool to clear a >= 1.8x speedup.  Holding
the backend fixed makes the ratio measure parallel fan-out alone: both
sides pay identical per-shard serialization and child-execution costs
(measured ~5 ms transport for ~4 MB of columns vs tens of ms of numpy
work per shard), so the 1-worker makespan is the *sum* of shard updates
and the 4-worker makespan is their *max*.  The gate only runs on a
multi-core machine (the CI benchmark runners have 4 vCPUs); the serial
shard sweep below runs everywhere as the recorded reference table.

Count-Min is the array-backed detector named by the acceptance criteria:
its per-shard ``update_batch`` is one vectorized hash + ``np.add.at``
scatter per row, all single-threaded numpy, so shard fan-out is the only
parallelism available and the speedup measures the engine, not BLAS.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import write_result

from repro.analysis.render import format_table
from repro.analysis.throughput import trace_columns
from repro.core import make_detector
from repro.engine import ParallelRunner, ShardedDetector
from repro.trace import presets

REQUIRED_SPEEDUP = 1.8
NUM_SHARDS = 4
WORKERS = 4
REPEATS = 3


@pytest.fixture(scope="module")
def big_columns():
    """A few hundred thousand packets: large enough that per-shard work
    dwarfs the per-call detector-state round-trip.  The timestamp column
    is dropped — Count-Min ignores it, so shipping it would only pad the
    per-shard payloads."""
    trace = presets.caida_like_day(0, duration=300.0)
    keys, weights, _ = trace_columns(trace, limit=400_000)
    return keys, weights


def _measure(columns, num_shards: int, runner: ParallelRunner | None,
             repeats: int = REPEATS) -> float:
    keys, weights = columns
    best = float("inf")
    for _ in range(repeats):
        detector = ShardedDetector(
            lambda: make_detector("countmin"), num_shards, runner
        )
        t0 = time.perf_counter()
        detector.update_batch(keys, weights)
        best = min(best, time.perf_counter() - t0)
    return best


def _warm(runner: ParallelRunner, columns) -> None:
    """Spin the pool up (fork + imports) outside every timed region."""
    keys, weights = columns
    detector = ShardedDetector(
        lambda: make_detector("countmin"), NUM_SHARDS, runner
    )
    detector.update_batch(keys[:1000], weights[:1000])


def test_serial_shard_sweep(big_columns):
    """Reference table: serial-backend throughput is flat in shard count
    (partitioning costs little; parallelism is what the pool adds)."""
    n = len(big_columns[0])
    rows = []
    base = None
    for num_shards in (1, 2, 4):
        seconds = _measure(big_columns, num_shards, runner=None)
        base = base or seconds
        rows.append({
            "shards": num_shards,
            "backend": "serial",
            "packets": n,
            "pps": int(n / seconds),
            "vs_1_shard": round(base / seconds, 2),
        })
    write_result(
        "shard_scaling_serial.txt",
        "Serial sharded-engine throughput by shard count (countmin)\n"
        + format_table(rows),
    )
    # Partitioning overhead must not halve throughput at 4 shards.
    assert rows[-1]["vs_1_shard"] > 0.5


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"needs >= {WORKERS} cores for the parallel speedup gate",
)
def test_process_pool_speedup_gate(big_columns):
    n = len(big_columns[0])
    with ParallelRunner("process", workers=1) as runner:
        _warm(runner, big_columns)
        one_worker_s = _measure(big_columns, NUM_SHARDS, runner)
    with ParallelRunner("process", workers=WORKERS) as runner:
        _warm(runner, big_columns)
        four_worker_s = _measure(big_columns, NUM_SHARDS, runner)
    speedup = one_worker_s / four_worker_s
    write_result(
        "shard_scaling_parallel.txt",
        "Process-pool sharded-engine throughput (countmin, "
        f"{NUM_SHARDS} shards, {WORKERS} vs 1 workers)\n"
        + format_table([{
            "packets": n,
            "pps_1_worker": int(n / one_worker_s),
            f"pps_{WORKERS}_workers": int(n / four_worker_s),
            "speedup": round(speedup, 2),
            "required": REQUIRED_SPEEDUP,
        }]),
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"process pool speedup {speedup:.2f}x < {REQUIRED_SPEEDUP}x "
        f"at {WORKERS} workers vs 1"
    )
