"""Update throughput of every detector (packets/second on CPython).

The paper's target is line rate on a switch; in Python we report *relative*
update cost, which is what distinguishes the algorithm classes:

- O(1)/packet: Space-Saving, HashPipe, sampled RHHH, TDBF;
- O(levels)/packet: full per-level updates (RHHH full, TD-HHH full);
- and, since the core-layer refactor, the *batch* path: one vectorized
  sweep per column batch for the array-backed structures (the
  ``*_batch`` benchmarks below, which process the same 20k packets).
"""

import pytest

from repro.analysis.throughput import trace_columns
from repro.decay.laws import ExponentialDecay
from repro.decay.ondemand_tdbf import OnDemandTDBF
from repro.decay.td_hhh import TimeDecayingHHH
from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch
from repro.sketch.hashpipe import HashPipe
from repro.sketch.rhhh import RHHH
from repro.sketch.spacesaving import SpaceSaving


@pytest.fixture(scope="module")
def packets(throughput_trace):
    """(src, length, ts) triples, pre-extracted so the benchmark measures
    detector cost, not numpy access."""
    t = throughput_trace
    n = min(len(t), 20_000)
    return [
        (int(t.src[i]), int(t.length[i]), float(t.ts[i])) for i in range(n)
    ]


@pytest.fixture(scope="module")
def columns(throughput_trace):
    """The same packets as columnar (src, length, ts) numpy arrays."""
    return trace_columns(throughput_trace)


def test_throughput_spacesaving(benchmark, packets):
    def run():
        det = SpaceSaving(256)
        for src, length, _ in packets:
            det.update(src, length)
        return det

    det = benchmark(run)
    assert det.total > 0


def test_throughput_countmin(benchmark, packets):
    def run():
        det = CountMinSketch(width=1024, rows=4)
        for src, length, _ in packets:
            det.update(src, length)
        return det

    det = benchmark(run)
    assert det.total > 0


def test_throughput_hashpipe(benchmark, packets):
    def run():
        det = HashPipe(stage_slots=256, stages=4)
        for src, length, _ in packets:
            det.update(src, length)
        return det

    det = benchmark(run)
    assert det.total > 0


def test_throughput_rhhh_sampled(benchmark, packets):
    def run():
        det = RHHH(counters_per_level=128, seed=1, sample_levels=True)
        for src, length, _ in packets:
            det.update(src, length)
        return det

    det = benchmark(run)
    assert det.updates == len(packets)


def test_throughput_rhhh_full(benchmark, packets):
    def run():
        det = RHHH(counters_per_level=128, sample_levels=False)
        for src, length, _ in packets:
            det.update(src, length)
        return det

    det = benchmark(run)
    assert det.updates == len(packets) * det.hierarchy.num_levels


def test_throughput_ondemand_tdbf(benchmark, packets):
    def run():
        det = OnDemandTDBF(cells=4096, hashes=4, law=ExponentialDecay(tau=10.0))
        for src, length, ts in packets:
            det.update(src, length, ts)
        return det

    benchmark(run)


def test_throughput_countmin_batch(benchmark, columns):
    src, length, ts = columns

    def run():
        det = CountMinSketch(width=1024, rows=4)
        det.update_batch(src, length, ts)
        return det

    det = benchmark(run)
    assert det.total == int(length.sum())


def test_throughput_countsketch_batch(benchmark, columns):
    src, length, ts = columns

    def run():
        det = CountSketch(width=1024, rows=5)
        det.update_batch(src, length, ts)
        return det

    det = benchmark(run)
    assert det.total == int(length.sum())


def test_throughput_ondemand_tdbf_batch(benchmark, columns):
    src, length, ts = columns

    def run():
        det = OnDemandTDBF(cells=4096, hashes=4, law=ExponentialDecay(tau=10.0))
        det.update_batch(src, length, ts)
        return det

    benchmark(run)


def test_throughput_td_hhh_full(benchmark, packets):
    def run():
        det = TimeDecayingHHH(
            law=ExponentialDecay(tau=10.0), counters_per_level=128
        )
        for src, length, ts in packets:
            det.update(src, length, ts)
        return det

    det = benchmark(run)
    assert det.packets == len(packets)


def test_throughput_td_hhh_sampled(benchmark, packets):
    def run():
        det = TimeDecayingHHH(
            law=ExponentialDecay(tau=10.0), counters_per_level=128,
            sample_levels=True, seed=2,
        )
        for src, length, ts in packets:
            det.update(src, length, ts)
        return det

    det = benchmark(run)
    assert det.packets == len(packets)
