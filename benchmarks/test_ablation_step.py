"""Ablation: sliding-window step size (DESIGN.md call-out).

The paper slides by 1 s.  A finer step reveals at least as many HHHs (more
window placements), so the hidden percentage is monotone non-decreasing as
the step shrinks; this bench quantifies how fast the number saturates.
"""

from benchmarks.conftest import write_result
from repro.analysis import HiddenHHHExperiment
from repro.analysis.render import format_table


def run_steps(trace, steps=(2.0, 1.0, 0.5)):
    rows = []
    for step in steps:
        experiment = HiddenHHHExperiment(
            window_sizes=(10.0,), thresholds=(0.05,), step=step
        )
        row = experiment.run(trace, label=f"step={step}").rows[0]
        rows.append(
            {
                "step_s": step,
                "sliding_total": row.total,
                "hidden": row.hidden,
                "hidden_%": round(row.hidden_percent, 1),
            }
        )
    return rows


def test_ablation_sliding_step(benchmark, sec3_trace):
    rows = benchmark.pedantic(
        run_steps, args=(sec3_trace,), rounds=1, iterations=1
    )
    write_result("ablation_step.txt", format_table(rows))
    by_step = {r["step_s"]: r for r in rows}
    # Finer steps see at least as many unique HHHs.
    assert by_step[0.5]["sliding_total"] >= by_step[2.0]["sliding_total"]
    # The effect exists at every step.
    assert all(r["hidden"] > 0 for r in rows)
