"""Extension bench: UnivMon (the paper's reference [4]) as the per-window
detector, plus its multi-task outputs.

The poster frames UnivMon as a representative disjoint-window system.
This bench measures (a) its heavy-hitter recall per window against exact
ground truth and (b) the one-sketch-many-tasks outputs (entropy,
cardinality) that motivate deploying it per window — the capability a
windowless replacement must eventually match.
"""

from benchmarks.conftest import write_result
from repro.analysis.render import format_table
from repro.hhh.exact_hh import exact_heavy_hitters
from repro.sketch.univmon import UnivMon
from repro.windows.disjoint import DisjointWindows


def run_univmon(trace):
    rows = []
    for window in DisjointWindows(10.0).over_trace(trace):
        i, j = trace.index_range(window.t0, window.t1)
        um = UnivMon(levels=8, width=512, top_k=64)
        window_bytes = 0
        for p in range(i, j):
            w = int(trace.length[p])
            um.update(int(trace.src[p]), w)
            window_bytes += w
        threshold = 0.05 * window_bytes
        counts = trace.bytes_by_key(window.t0, window.t1)
        truth = set(exact_heavy_hitters(counts, threshold))
        reported = set(um.query(threshold))
        recall = len(truth & reported) / len(truth) if truth else 1.0
        rows.append(
            {
                "window": window.index,
                "truth_hh": len(truth),
                "reported": len(reported),
                "recall": round(recall, 3),
                "entropy_bits": round(um.entropy(), 2),
                "cardinality": int(um.cardinality()),
                "distinct_true": len(counts),
            }
        )
    return rows


def test_ext_univmon_tasks(benchmark, sec3_trace):
    rows = benchmark.pedantic(
        run_univmon, args=(sec3_trace,), rounds=1, iterations=1
    )
    write_result("ext_univmon_tasks.txt", format_table(rows))
    # Heavy-hitter recall per window stays high.
    mean_recall = sum(r["recall"] for r in rows) / len(rows)
    assert mean_recall >= 0.7
    # Entropy estimates are positive and below log2(distinct).
    import math

    for r in rows:
        assert 0.0 <= r["entropy_bits"] <= math.log2(max(2, r["distinct_true"])) + 2
