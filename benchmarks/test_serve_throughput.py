"""Serve-engine streaming throughput (the ISSUE 8 acceptance gate).

Streams one large trace through the persistent shard-worker runtime
(:mod:`repro.stream.serve`) in ingest-only mode — a never-firing emission
policy, so the numbers measure the pipelined partition → shared-memory
handoff → pinned-worker update path and nothing else.  Three records:

- a reference table (runs everywhere): the serial 4-shard
  :class:`StreamPipeline` vs serve with 1 worker, i.e. what the
  process-hop + shared-memory transport costs before parallelism pays;
- the acceptance gate (>= 4 cores only, matching the CI benchmark
  runners): serve with 4 workers must clear ``>= 1.8x`` the 1-worker
  serve throughput on the same 4-shard layout — the pipelined pool's
  parallel fan-out, backend held fixed;
- the tenant add/teardown cost is excluded by starting the clock after
  ``add_tenant`` returns (worker spawn is a sync barrier) and stopping it
  after ``run()``'s final worker drain.

Count-Min again: single-threaded numpy per shard, so worker fan-out is
the only parallelism available and the ratio measures the engine.
"""

from __future__ import annotations

import os
import time
from functools import partial

import pytest

from benchmarks.conftest import write_result

from repro.analysis.render import format_table
from repro.core import make_detector
from repro.engine import ShardedDetector
from repro.stream import StreamPipeline, TraceSource, parse_emission_policy
from repro.stream.serve import ServeRuntime
from repro.trace import presets

REQUIRED_SPEEDUP = 1.8
NUM_SHARDS = 4
WORKERS = 4
CHUNK = 8192
REPEATS = 3

#: An emission policy that never fires: ingest-only streaming.
NEVER = f"{10**12}p"

_FACTORY = partial(make_detector, "countmin")


@pytest.fixture(scope="module")
def stream_trace():
    """A few hundred thousand packets, enough that per-chunk constant
    costs (pipe messages, slot bookkeeping) are amortized away."""
    return presets.caida_like_day(0, duration=300.0)


def _serial_seconds(trace) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        pipeline = StreamPipeline(
            ShardedDetector(_FACTORY, NUM_SHARDS),
            parse_emission_policy(NEVER),
            emit_partial=False,
        )
        source = TraceSource(trace)
        t0 = time.perf_counter()
        for _emission in pipeline.process(source, CHUNK):
            pass
        best = min(best, time.perf_counter() - t0)
    return best


def _serve_seconds(trace, workers: int) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        with ServeRuntime(
            workers=workers, shards=NUM_SHARDS, chunk_size=CHUNK
        ) as runtime:
            runtime.add_tenant(
                "bench", _FACTORY, TraceSource(trace),
                emit=NEVER, emit_partial=False,
            )
            # The clock starts after add_tenant's sync barrier (worker
            # spawn excluded) and stops after run()'s final ack drain
            # (every shipped chunk folded in).
            t0 = time.perf_counter()
            for _item in runtime.run():
                pass
            elapsed = time.perf_counter() - t0
            assert not runtime.failed, runtime.failed
        best = min(best, elapsed)
    return best


def test_serve_vs_serial_reference(stream_trace):
    """Reference table: what the process hop costs at 1 worker, recorded
    wherever the suite runs (including single-core machines)."""
    n = len(stream_trace)
    serial_s = _serial_seconds(stream_trace)
    serve_s = _serve_seconds(stream_trace, workers=1)
    write_result(
        "serve_throughput.txt",
        "Serve-engine streaming throughput vs serial pipeline "
        f"(countmin, {NUM_SHARDS} shards, chunk {CHUNK}, "
        f"{os.cpu_count()} cores)\n"
        + format_table([{
            "packets": n,
            "pps_serial": int(n / serial_s),
            "pps_serve_1worker": int(n / serve_s),
            "serve_vs_serial": round(serial_s / serve_s, 2),
        }]),
    )
    # The transport must not swallow the engine whole even at 1 worker:
    # shared-memory handoff + pipelined partitioning should hold a
    # meaningful fraction of serial throughput (parallel workers are
    # where serve pays for itself — see the gate below).
    assert serve_s < serial_s * 4


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"needs >= {WORKERS} cores for the serve speedup gate",
)
def test_serve_pipeline_speedup_gate(stream_trace):
    """The acceptance gate: 4 persistent workers >= 1.8x the 1-worker
    serve throughput on the same shard layout."""
    n = len(stream_trace)
    one_worker_s = _serve_seconds(stream_trace, workers=1)
    four_worker_s = _serve_seconds(stream_trace, workers=WORKERS)
    speedup = one_worker_s / four_worker_s
    write_result(
        "serve_throughput_parallel.txt",
        "Serve-engine pipelined speedup (countmin, "
        f"{NUM_SHARDS} shards, {WORKERS} vs 1 workers)\n"
        + format_table([{
            "packets": n,
            "pps_1_worker": int(n / one_worker_s),
            f"pps_{WORKERS}_workers": int(n / four_worker_s),
            "speedup": round(speedup, 2),
            "required": REQUIRED_SPEEDUP,
        }]),
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"serve speedup {speedup:.2f}x < {REQUIRED_SPEEDUP}x "
        f"at {WORKERS} workers vs 1"
    )
