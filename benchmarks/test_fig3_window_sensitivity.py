"""Figure 3 regeneration: Jaccard similarity vs micro window shrinkage.

Paper series: baseline 10 s windows, shrunk variants 10-100 ms shorter,
Jaccard similarity CDF at a 5% threshold.  Expected shape: similarity
degrades monotonically with the shrink delta, with a visible fraction of
windows already changed at small deltas.
"""

from benchmarks.conftest import write_result
from repro.analysis import WindowSensitivityExperiment


def run_fig3(trace):
    experiment = WindowSensitivityExperiment(baseline_size=10.0, phi=0.05)
    return experiment.run(trace)


def test_fig3_window_sensitivity(benchmark, fig3_trace):
    result = benchmark.pedantic(
        run_fig3, args=(fig3_trace,), rounds=1, iterations=1
    )
    write_result(
        "fig3_window_sensitivity.txt",
        result.to_table()
        + "\n\n" + result.to_cdf_plot(0.04)
        + "\n\n" + result.to_cdf_plot(0.10),
    )

    rows = {r.delta_s: r for r in result.rows()}
    # Monotone-ish: the largest delta changes at least as much as the smallest.
    assert rows[0.10].mean_similarity <= rows[0.01].mean_similarity + 1e-9
    assert (
        rows[0.10].fraction_not_identical
        >= rows[0.01].fraction_not_identical
    )
    # The 100 ms shave visibly changes the reported sets (paper: 25%
    # dissimilarity for >=70% of windows; our synthetic traffic's weaker
    # long-range dependence yields a smaller but clearly nonzero effect).
    assert rows[0.10].fraction_not_identical >= 0.15
    assert rows[0.10].mean_similarity < 1.0
