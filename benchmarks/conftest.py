"""Shared benchmark fixtures.

Benchmarks regenerate the paper's artefacts at laptop scale: trace
durations default to a fraction of the paper's (1 h / 20 min) since the
effect sizes are duration-stable; RESULTS_DIR collects the regenerated
tables so ``bench_output.txt`` plus ``benchmarks/results/`` together record
a full run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.trace import presets

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> None:
    """Persist a regenerated table next to the benchmarks."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print(f"\n--- {name} ---")
    print(text)


@pytest.fixture(scope="session")
def fig2_traces():
    """The four synthetic days at benchmark scale (90 s each)."""
    return presets.all_days(duration=90.0)


@pytest.fixture(scope="session")
def fig3_trace():
    """The sensitivity trace at benchmark scale (240 s)."""
    return presets.sensitivity_trace(duration=240.0)


@pytest.fixture(scope="session")
def sec3_trace():
    """The Section 3 comparison trace (60 s of day 0)."""
    return presets.caida_like_day(0, duration=60.0)


@pytest.fixture(scope="session")
def throughput_trace():
    """A small trace for update-throughput measurements."""
    return presets.caida_like_day(0, duration=20.0)


@pytest.fixture(scope="session")
def batch_trace():
    """A larger trace (~114k packets) for the batch-admission gates, big
    enough that per-chunk constant costs are amortized away."""
    return presets.caida_like_day(0, duration=120.0)
