#!/usr/bin/env python
"""Gate CI on the performance trajectory of archived smoke artifacts.

The experiment-smoke job archives one ``BENCH_<experiment>.json`` per
registered experiment.  This script compares the metrics named in
``benchmarks/perf_floors.json`` against their committed bounds and exits
non-zero when any observed value crosses its bound by more than the
configured tolerance (default: 20%).

An entry carries either a ``floor`` (higher-is-better metrics such as
throughput: fail when the value drops below ``floor * (1 - tolerance)``)
or a ``ceiling`` (lower-is-better metrics such as recovery latency: fail
when the value exceeds ``ceiling * (1 + tolerance)``).  It addresses a
metric either on the artifact's ``headline`` (dotted path) or on a single
``rows`` entry selected by a key/value match::

    {"artifact": "batch-throughput", "metric": "headline.max_batch_pps",
     "floor": 3000000}
    {"artifact": "batch-throughput", "row": {"detector": "countmin"},
     "metric": "speedup", "floor": 20.0}
    {"artifact": "serve-recovery", "metric": "headline.recovery_s",
     "ceiling": 5.0}

A missing artifact, row, or metric is itself a failure — renaming an
experiment or a metric must be accompanied by a floors update, otherwise
the trajectory silently loses coverage.

Usage::

    python scripts/check_perf_trajectory.py --artifacts artifacts \
        --floors benchmarks/perf_floors.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _resolve(document: dict, entry: dict) -> float:
    """The observed value a floor entry points at (raises KeyError)."""
    target: object = document
    if "row" in entry:
        ((key, want),) = entry["row"].items()
        matches = [
            row for row in document.get("rows", []) if row.get(key) == want
        ]
        if not matches:
            raise KeyError(f"no row with {key}={want!r}")
        target = matches[0]
    for part in entry["metric"].split("."):
        if not isinstance(target, dict) or part not in target:
            raise KeyError(f"metric {entry['metric']!r} not found")
        target = target[part]
    if not isinstance(target, (int, float)) or isinstance(target, bool):
        raise KeyError(f"metric {entry['metric']!r} is not numeric")
    return float(target)


def _describe(entry: dict) -> str:
    where = entry["artifact"]
    if "row" in entry:
        ((key, want),) = entry["row"].items()
        where += f"[{key}={want}]"
    return f"{where}.{entry['metric']}"


def check(artifacts_dir: pathlib.Path, floors_path: pathlib.Path) -> int:
    config = json.loads(floors_path.read_text())
    tolerance = float(config.get("tolerance", 0.2))
    failures = []
    for entry in config["floors"]:
        name = _describe(entry)
        lower_is_better = "ceiling" in entry
        bound = float(entry["ceiling" if lower_is_better else "floor"])
        cutoff = bound * (
            (1.0 + tolerance) if lower_is_better else (1.0 - tolerance)
        )
        path = artifacts_dir / f"BENCH_{entry['artifact']}.json"
        try:
            document = json.loads(path.read_text())
            value = _resolve(document, entry)
        except FileNotFoundError:
            failures.append(f"{name}: artifact {path.name} missing")
            print(f"FAIL {name}: artifact {path.name} missing")
            continue
        except KeyError as exc:
            failures.append(f"{name}: {exc.args[0]}")
            print(f"FAIL {name}: {exc.args[0]}")
            continue
        if lower_is_better and value > cutoff:
            failures.append(
                f"{name}: {value:g} > {cutoff:g} "
                f"(ceiling {bound:g} + {tolerance:.0%})"
            )
            status = "FAIL"
        elif not lower_is_better and value < cutoff:
            failures.append(
                f"{name}: {value:g} < {cutoff:g} "
                f"(floor {bound:g} - {tolerance:.0%})"
            )
            status = "FAIL"
        else:
            status = "ok"
        kind = "ceiling" if lower_is_better else "floor"
        print(
            f"{status:4s} {name}: observed {value:g}, "
            f"{kind} {bound:g}, cutoff {cutoff:g}"
        )
    if failures:
        print(f"\n{len(failures)} perf-trajectory regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf trajectory ok")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", type=pathlib.Path, default=pathlib.Path("artifacts"),
        help="directory holding BENCH_<experiment>.json files",
    )
    parser.add_argument(
        "--floors", type=pathlib.Path,
        default=pathlib.Path("benchmarks/perf_floors.json"),
        help="committed floors file",
    )
    args = parser.parse_args(argv)
    return check(args.artifacts, args.floors)


if __name__ == "__main__":
    sys.exit(main())
